"""Matching-as-a-service HTTP front end (stdlib ``http.server``).

Endpoints (all under ``/v1``, JSON unless noted — see docs/service.md):

=======  ==============================  =====================================
method   path                            meaning
=======  ==============================  =====================================
POST     /v1/jobs[?wait=0]               submit a JobRequest (JSON or TOML
                                         body); waits for the result by
                                         default, ``wait=0`` returns the job
                                         id immediately
GET      /v1/jobs/<id>                   job status (+ result when done)
GET      /v1/results/<key>               cached JobResult by content key
GET      /v1/artifacts/<key>/<name>      one artifact file (trace JSON, CSV…)
GET      /v1/stats                       cache/batch/worker counters
GET      /v1/healthz                     liveness + code_version
POST     /v1/shutdown                    clean shutdown
=======  ==============================  =====================================

The response envelope for job submission separates what is per-request
(``job_id``, ``cache``, ``state``) from the cache-stable ``result``
payload, which is **bit-identical** between the run that computed it and
every later cache hit.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.codever import cached_code_version
from repro.service.orchestrator import Orchestrator
from repro.service.pool import make_executor, warm_executor
from repro.service.schema import SCHEMA_VERSION, SchemaError, parse_request
from repro.service.store import ResultStore, write_store_meta

#: default cap on how long one synchronous submit may hold a connection
WAIT_TIMEOUT = 600.0


@dataclass
class ServiceConfig:
    """Everything `repro serve` can tune."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 → ephemeral (the bound port is reported back)
    store_dir: str = "service-store"
    workers: int = 2  #: worker processes; 0 = inline (tests/sandboxes)
    mp_context: str = "spawn"  #: "spawn" | "fork" (see pool.py)
    linger: float = 0.05  #: batch-coalescing window (seconds)
    wait_timeout: float = WAIT_TIMEOUT


class MatchingService:
    """The assembled service: store + pool + orchestrator + HTTP server."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.code_version = cached_code_version()
        self.store = ResultStore(self.config.store_dir)
        write_store_meta(self.config.store_dir, self.code_version)
        executor = make_executor(self.config.workers, self.config.mp_context)
        warm_executor(executor, self.config.workers)
        self.orchestrator = Orchestrator(
            self.store,
            executor,
            self.code_version,
            linger=self.config.linger,
        ).start()
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self.httpd.daemon_threads = True

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        try:
            self.httpd.serve_forever()
        finally:
            self.orchestrator.shutdown()

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and embedded use)."""
        t = threading.Thread(
            target=self.httpd.serve_forever, name="repro-httpd", daemon=True
        )
        t.start()
        return t

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.orchestrator.shutdown()


def _make_handler(service: MatchingService):
    orch = service.orchestrator
    store = service.store

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-matchd/1"

        # -- plumbing -------------------------------------------------
        def log_message(self, format, *args):  # quiet by default
            pass

        def _send(self, code: int, payload: dict | bytes,
                  content_type: str = "application/json") -> None:
            body = (
                payload if isinstance(payload, bytes)
                else (json.dumps(payload, sort_keys=True) + "\n").encode()
            )
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, code: int, message: str) -> None:
            self._send(code, {"error": message})

        def _body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length) if length else b""

        def _envelope(self, job) -> dict:
            env = job.describe()
            if job.result is not None:
                env["result"] = job.result.to_dict()
            return env

        # -- routes ---------------------------------------------------
        def do_POST(self):
            url = urlparse(self.path)
            if url.path == "/v1/jobs":
                return self._post_job(url)
            if url.path == "/v1/shutdown":
                self._send(200, {"ok": True, "message": "shutting down"})
                threading.Thread(target=service.shutdown, daemon=True).start()
                return
            self._error(404, f"no such endpoint: POST {url.path}")

        def _post_job(self, url) -> None:
            try:
                request = parse_request(
                    self._body(), self.headers.get("Content-Type", "")
                )
            except SchemaError as e:
                return self._error(400, str(e))
            try:
                from repro.harness.spec import get_spec

                get_spec(request.graph.name)  # reject before queueing
                job = orch.submit(request)
            except (KeyError, SchemaError) as e:
                return self._error(400, str(e))
            params = parse_qs(url.query)
            wait = params.get("wait", ["1"])[0] not in ("0", "false", "no")
            if wait:
                if not job.wait(timeout=service.config.wait_timeout):
                    return self._send(202, self._envelope(job))
            self._send(200, self._envelope(job))

        def do_GET(self):
            url = urlparse(self.path)
            parts = [p for p in url.path.split("/") if p]
            if url.path == "/v1/healthz":
                return self._send(200, {
                    "ok": True,
                    "schema_version": SCHEMA_VERSION,
                    "code_version": service.code_version,
                })
            if url.path == "/v1/stats":
                return self._send(200, orch.stats())
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                job = orch.job(parts[2])
                if job is None:
                    return self._error(404, f"no such job {parts[2]!r}")
                return self._send(200, self._envelope(job))
            if len(parts) == 3 and parts[:2] == ["v1", "results"]:
                result = store.peek(parts[2])
                if result is None:
                    return self._error(404, f"no cached result for {parts[2]!r}")
                return self._send(200, {"result": result.to_dict()})
            if len(parts) == 4 and parts[:2] == ["v1", "artifacts"]:
                path = store.artifact_path(parts[2], parts[3])
                if path is None:
                    return self._error(
                        404, f"no artifact {parts[3]!r} under {parts[2]!r}"
                    )
                blob = path.read_bytes()
                ctype = (
                    "application/json" if path.suffix == ".json"
                    else "text/csv" if path.suffix == ".csv"
                    else "text/plain"
                )
                return self._send(200, blob, content_type=ctype)
            self._error(404, f"no such endpoint: GET {url.path}")

    return Handler


def serve(config: ServiceConfig | None = None) -> MatchingService:
    """Build a service; callers pick ``serve_forever`` or background mode."""
    return MatchingService(config)
