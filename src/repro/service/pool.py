"""Worker-pool protocol: batches of job points executed in subprocesses.

The orchestrator ships each coalesced batch — a list of (key, JobRequest
dict) pairs sharing one graph recipe — to :func:`execute_batch` on a
``multiprocessing`` worker (via ``ProcessPoolExecutor``). The worker
builds the graph **once**, runs every point through the
:func:`repro.api.run` facade, renders profile artifacts in memory, and
returns plain dicts; the server process owns all store writes, so the
CAS never sees cross-process partial state.

Workers are long-lived: the per-process graph memoization in
:mod:`repro.harness.spec` keeps serving across batches.
"""

from __future__ import annotations

import traceback
from concurrent.futures import Executor, Future, ProcessPoolExecutor


def execute_point(job: dict) -> dict:
    """Run one {key, request} point; never raises (errors are data)."""
    from repro import api
    from repro.harness.records import record_to_dict
    from repro.service.schema import JobRequest

    key = job["key"]
    try:
        request = JobRequest.from_dict(job["request"])
        g = request.graph.build()
        cfg = request.config.to_run_config()
        rec = api.run(
            g,
            request.nprocs,
            request.model,
            config=cfg,
            label=request.graph.name,
            keep_result=request.config.profile,
        )
        artifacts: dict[str, bytes] = {}
        if request.config.profile:
            artifacts = _render_artifacts(rec.result, request.model)
            rec.result = None  # engine state is not picklable wire cargo
        return {
            "key": key,
            "ok": True,
            "record": record_to_dict(rec),
            "artifacts": artifacts,
        }
    except Exception as e:  # classified, returned, cached as an error
        return {
            "key": key,
            "ok": False,
            "error": f"{type(e).__name__}: {e}",
            "detail": traceback.format_exc(limit=20),
        }


def _render_artifacts(result, label: str) -> dict[str, bytes]:
    """The `repro profile` bundle, rendered to bytes instead of disk."""
    import tempfile
    from pathlib import Path

    from repro.harness.profiler import write_profile_bundle

    with tempfile.TemporaryDirectory(prefix="repro-artifacts-") as tmp:
        names = write_profile_bundle(tmp, result, label)
        return {name: (Path(tmp) / name).read_bytes() for name in names}


def execute_batch(jobs: list[dict]) -> list[dict]:
    """Entry point a worker process runs: one coalesced batch, in order.

    All jobs in a batch share a graph recipe (the orchestrator groups by
    :meth:`JobRequest.batch_key`), so the first point pays graph
    construction and the rest reuse the per-process memo.
    """
    return [execute_point(job) for job in jobs]


class InlineExecutor(Executor):
    """`workers=0` mode: run batches synchronously in the caller thread.

    Used by tests and by `repro submit --local`; also the fallback when
    multiprocessing is unavailable (e.g. sandboxed environments).
    """

    def submit(self, fn, /, *args, **kwargs) -> Future:
        fut: Future = Future()
        fut.set_running_or_notify_cancel()
        try:
            fut.set_result(fn(*args, **kwargs))
        except BaseException as e:  # pragma: no cover - defensive
            fut.set_exception(e)
        return fut

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        pass


def make_executor(workers: int, mp_context: str = "spawn") -> Executor:
    """Build the batch executor.

    ``workers == 0`` → :class:`InlineExecutor`; otherwise a
    ``ProcessPoolExecutor`` with the requested start method ("spawn" is
    the safe default alongside the threaded HTTP front end; "fork" is
    faster to warm on POSIX and what the tests use).
    """
    if workers <= 0:
        return InlineExecutor()
    import multiprocessing

    ctx = multiprocessing.get_context(mp_context)
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)


def warm_executor(executor: Executor, workers: int = 1) -> None:
    """Fork/spawn the workers *before* the HTTP threads start.

    Forking a process that already runs request threads risks inheriting
    held locks; warming while single-threaded sidesteps the whole class
    of problems and moves the import cost off the first request. The
    barrier sleep keeps each warm-up task busy long enough that the pool
    actually starts ``workers`` distinct processes.
    """
    futs = [executor.submit(_warm_sleep, 0.05) for _ in range(max(1, workers))]
    for f in futs:
        f.result()


def _warm_sleep(seconds: float) -> None:
    import time

    time.sleep(seconds)  # top-level function so spawn can pickle it
