"""Content-addressed result + artifact store.

Layout (under the store root)::

    objects/<key>/result.json        # JobResult payload (stable bytes)
    objects/<key>/<artifact files>   # trace JSON, phase CSVs, comm
                                     # matrices, checkpoints, ...
    tmp/                             # staging for atomic publication

``<key>`` is :meth:`JobRequest.cache_key` — sha256 of (graph spec,
config, code_version) — so a key's bytes are immutable once written:
publication stages the whole object directory under ``tmp/`` and
``os.replace``-renames it into place, making concurrent writers of the
same key idempotent and readers never see partial results.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import uuid
from pathlib import Path

from repro.service.schema import JobResult, SchemaError

_KEY_HEX = set("0123456789abcdef")


def _check_key(key: str) -> str:
    if not key or set(key) - _KEY_HEX:
        raise ValueError(f"malformed content key {key!r}")
    return key


class ResultStore:
    """Filesystem CAS with hit/miss accounting."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.tmp = self.root / "tmp"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.tmp.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # -- lookup -------------------------------------------------------
    def _dir(self, key: str) -> Path:
        return self.objects / _check_key(key)

    def contains(self, key: str) -> bool:
        return (self._dir(key) / "result.json").is_file()

    def lookup(self, key: str) -> JobResult | None:
        """Fetch a cached result, counting the probe as a hit or miss."""
        path = self._dir(key) / "result.json"
        try:
            text = path.read_text()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return JobResult.from_json(text)

    def peek(self, key: str) -> JobResult | None:
        """Fetch without touching the hit/miss counters (GET /v1/results)."""
        path = self._dir(key) / "result.json"
        try:
            return JobResult.from_json(path.read_text())
        except OSError:
            return None

    # -- publication --------------------------------------------------
    def put(self, result: JobResult, artifacts: dict[str, bytes] | None = None) -> None:
        """Publish a result (and its artifact files) atomically.

        Losing a same-key race is fine — the winner's bytes are identical
        by construction (determinism is the whole point of the key).
        """
        key = _check_key(result.key)
        stage = self.tmp / f"{key}-{uuid.uuid4().hex}"
        stage.mkdir(parents=True)
        try:
            for name, blob in (artifacts or {}).items():
                if "/" in name or "\\" in name or name.startswith("."):
                    raise ValueError(f"malformed artifact name {name!r}")
                (stage / name).write_bytes(blob)
            # result.json written last inside the stage; the rename below
            # publishes everything in one shot anyway.
            (stage / "result.json").write_text(result.to_json())
            target = self._dir(key)
            try:
                os.replace(stage, target)
            except OSError:
                if self.contains(key):  # lost a same-key race: drop ours
                    shutil.rmtree(stage, ignore_errors=True)
                else:
                    raise
        except Exception:
            shutil.rmtree(stage, ignore_errors=True)
            raise

    # -- artifacts ----------------------------------------------------
    def artifact_path(self, key: str, name: str) -> Path | None:
        """Resolve an artifact file, refusing path escapes."""
        base = self._dir(key)
        if "/" in name or "\\" in name or name.startswith(".") or not name:
            return None
        path = base / name
        if path.is_file() and name != "result.json":
            return path
        return None

    def artifact_names(self, key: str) -> list[str]:
        base = self._dir(key)
        if not base.is_dir():
            return []
        return sorted(
            p.name for p in base.iterdir()
            if p.is_file() and p.name != "result.json"
        )

    # -- accounting ---------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.objects.iterdir())

    def stats(self) -> dict:
        with self._lock:
            return {
                "objects": len(self),
                "cache_hits": self.hits,
                "cache_misses": self.misses,
            }


def write_store_meta(root: str | Path, code_version: str) -> None:
    """Record the code version the store was filled under (diagnostics)."""
    meta = Path(root) / "META.json"
    meta.write_text(json.dumps({"code_version": code_version}, indent=1))


def read_store_meta(root: str | Path) -> dict:
    try:
        return json.loads((Path(root) / "META.json").read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise SchemaError(f"unreadable store META.json: {e}") from None
