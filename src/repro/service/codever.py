"""Code-version fingerprint for the result cache.

The cache key is ``hash(graph_spec, config, code_version)`` — determinism
makes results reusable *only* for the code that produced them, so the
version component must change whenever any simulation-relevant source
changes. We hash the **file contents** of the installed ``repro`` package
rather than shelling out to ``git describe``: sdist/pip installs have no
``.git`` directory, and a content hash also distinguishes dirty working
trees, which a tag-based version would silently conflate.
"""

from __future__ import annotations

import hashlib
from pathlib import Path


def code_version(root: str | Path | None = None) -> str:
    """12-hex-digit digest of every ``*.py`` file under ``root``.

    ``root`` defaults to the installed ``repro`` package directory. The
    digest covers relative paths *and* contents in sorted order, so
    renames, additions, deletions, and edits all change it; bytecode
    caches are ignored. Pure function of the tree — no git, no mtimes.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    root = Path(root)
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if "__pycache__" in rel:
            continue
        h.update(rel.encode())
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return h.hexdigest()[:12]


_cached: str | None = None


def cached_code_version() -> str:
    """:func:`code_version` of the running package, computed once.

    The source tree does not change under a running server; job
    submission is hot, hashing ~100 files is not free.
    """
    global _cached
    if _cached is None:
        _cached = code_version()
    return _cached
