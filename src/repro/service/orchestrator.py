"""Job orchestrator: dedup, coalesce, batch, dispatch, fan out.

Request lifecycle::

    submit ──► cache probe ──hit──► done ("hit", zero simulations)
                 │miss
                 ├─ identical request already queued/running?
                 │      yes ──► follower of that primary ("coalesced")
                 │      no  ──► primary job, enqueued ("miss")
                 ▼
    dispatcher thread: linger briefly, drain the queue, group primaries
    by batch key (same graph recipe → one worker dispatch, one graph
    build), submit each batch to the worker pool
                 ▼
    completion: publish JobResult + artifacts to the content-addressed
    store, then fan the *same* result out to the primary and every
    follower (all waiters wake with identical payloads)

Every structure is guarded by one lock; jobs expose a ``threading.Event``
so HTTP handler threads (or library callers) can block for completion.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.service.pool import execute_batch
from repro.service.schema import JobRequest, JobResult
from repro.service.store import ResultStore

_ACTIVE = ("queued", "running")


@dataclass
class Job:
    """One submitted request and its progress through the service."""

    id: str
    request: JobRequest
    key: str  #: content address (cache key)
    cache: str  #: "hit" | "miss" | "coalesced"
    state: str = "queued"  #: queued → running → done | failed
    result: JobResult | None = None
    followers: list["Job"] = field(default_factory=list)
    done: threading.Event = field(default_factory=threading.Event)

    def wait(self, timeout: float | None = None) -> bool:
        return self.done.wait(timeout)

    def describe(self) -> dict:
        return {
            "job_id": self.id,
            "key": self.key,
            "state": self.state,
            "cache": self.cache,
        }


class Orchestrator:
    """Owns the queue, the in-flight index, and the dispatcher thread."""

    def __init__(
        self,
        store: ResultStore,
        executor,
        code_version: str,
        *,
        linger: float = 0.05,
    ):
        self.store = store
        self.executor = executor
        self.code_version = code_version
        #: seconds the dispatcher waits after a submission before cutting
        #: a batch — the window in which overlapping sweep requests land
        #: together (0 disables lingering; batches are then whatever has
        #: already queued when the dispatcher wakes)
        self.linger = linger
        self._lock = threading.Lock()
        self._wakeup = threading.Event()
        self._queue: list[Job] = []
        self._inflight: dict[str, Job] = {}  # key -> primary job
        self._jobs: dict[str, Job] = {}  # job id -> job (incl. finished)
        self._ids = itertools.count(1)
        self._stop = False
        # -- counters (see /v1/stats) ---------------------------------
        self.jobs_submitted = 0
        self.jobs_coalesced = 0
        self.sims_executed = 0
        self.sims_failed = 0
        self.batches_dispatched = 0
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatcher", daemon=True
        )
        self._started = False

    # -- lifecycle ----------------------------------------------------
    def start(self) -> "Orchestrator":
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._stop = True
        self._wakeup.set()
        if self._started and wait:
            self._thread.join(timeout=10)
        self.executor.shutdown(wait=wait)

    # -- submission ---------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Register a request; returns a Job that is possibly already done.

        Never blocks on simulation: cache hits complete inline, misses
        and coalesced duplicates complete via the dispatcher. Callers
        block on ``job.wait()`` if and when they want the result.
        """
        request.validate()
        key = request.cache_key(self.code_version)
        with self._lock:
            self.jobs_submitted += 1
            job_id = f"job-{next(self._ids)}"
            primary = self._inflight.get(key)
            if primary is not None:
                # identical request already queued/running: ride along
                job = Job(id=job_id, request=request, key=key, cache="coalesced")
                primary.followers.append(job)
                self._jobs[job_id] = job
                self.jobs_coalesced += 1
                return job
            cached = self.store.lookup(key)  # counts the hit or miss
            if cached is not None:
                job = Job(
                    id=job_id, request=request, key=key, cache="hit",
                    state="done" if cached.status == "ok" else "failed",
                    result=cached,
                )
                job.done.set()
                self._jobs[job_id] = job
                return job
            job = Job(id=job_id, request=request, key=key, cache="miss")
            self._jobs[job_id] = job
            self._inflight[key] = job
            self._queue.append(job)
        self._wakeup.set()
        return job

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    # -- dispatch -----------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            self._wakeup.wait()
            with self._lock:
                if self._stop:
                    return
            if self.linger > 0:
                # collect overlapping requests into the same cut
                time.sleep(self.linger)
            with self._lock:
                if self._stop:
                    return
                batchable, self._queue = self._queue, []
                self._wakeup.clear()
            if not batchable:
                continue
            for batch in self._group(batchable):
                payload = [
                    {"key": j.key, "request": j.request.to_dict()} for j in batch
                ]
                for j in batch:
                    j.state = "running"
                with self._lock:
                    self.batches_dispatched += 1
                fut = self.executor.submit(execute_batch, payload)
                fut.add_done_callback(
                    lambda f, jobs=batch: self._complete(jobs, f)
                )

    @staticmethod
    def _group(jobs: list[Job]) -> list[list[Job]]:
        """Group pending primaries into shared sweep batches by graph."""
        groups: dict[str, list[Job]] = {}
        for j in jobs:
            groups.setdefault(j.request.batch_key(), []).append(j)
        return list(groups.values())

    # -- completion ---------------------------------------------------
    def _complete(self, jobs: list[Job], fut) -> None:
        try:
            outcomes = {o["key"]: o for o in fut.result()}
        except Exception as e:  # worker process died, pool broke, ...
            outcomes = {
                j.key: {"key": j.key, "ok": False,
                        "error": f"worker failure: {type(e).__name__}: {e}"}
                for j in jobs
            }
        for job in jobs:
            out = outcomes.get(
                job.key,
                {"ok": False, "error": "worker returned no outcome for key"},
            )
            if out.get("ok"):
                result = JobResult(
                    key=job.key,
                    status="ok",
                    record=out["record"],
                    artifacts=tuple(sorted(out.get("artifacts", {}))),
                    code_version=self.code_version,
                )
            else:
                result = JobResult(
                    key=job.key,
                    status="error",
                    error=out.get("error", "unknown worker error"),
                    code_version=self.code_version,
                )
            try:
                self.store.put(result, artifacts=out.get("artifacts") or {})
            except Exception as e:  # keep serving from memory regardless
                result = JobResult(
                    key=job.key, status="error",
                    error=f"store write failed: {e}",
                    code_version=self.code_version,
                )
            with self._lock:
                self.sims_executed += 1
                if result.status != "ok":
                    self.sims_failed += 1
                self._inflight.pop(job.key, None)
                waiters = [job, *job.followers]
            for w in waiters:
                w.result = result
                w.state = "done" if result.status == "ok" else "failed"
                w.done.set()

    # -- accounting ---------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            d = {
                "jobs_submitted": self.jobs_submitted,
                "jobs_coalesced": self.jobs_coalesced,
                "sims_executed": self.sims_executed,
                "sims_failed": self.sims_failed,
                "batches_dispatched": self.batches_dispatched,
                "queued": len(self._queue),
                "inflight": len(self._inflight),
                "code_version": self.code_version,
            }
        d.update(self.store.stats())
        return d
