"""INCL — nonblocking neighborhood collectives (extension backend).

The paper's related work (§VI) cites Kandalla et al.'s study of
*nonblocking* neighborhood collectives for BFS and notes that matching's
dynamic communication is a harder case. This backend answers the implied
question: the NCL structure is kept, but each iteration's payload
exchange is issued with ``MPI_Ineighbor_alltoallv`` semantics and the
PROCESSNEIGHBORS work of the previous round executes *between issue and
wait*, hiding part of the wire time behind application compute.

What can and cannot be hidden: the per-lane CPU posting cost is charged
at issue (a CPU cannot overlap with itself); the latency walk and payload
serialization overlap with whatever local work is available. On
dense-process-graph inputs this claws back part — not all — of the
blocking-collective penalty, mirroring the partial wins reported for
nonblocking collectives on irregular workloads.
"""

from __future__ import annotations

import numpy as np

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.state import MatchingState
from repro.mpisim.context import RankContext
from repro.mpisim.engine import run_inline


class INCLBackend:
    """Double-buffered nonblocking neighborhood-collective communication."""

    name = "incl"

    def __init__(self, ctx: RankContext, lg: LocalGraph, options=None):
        self.options = options
        self.ctx = ctx
        self.lg = lg
        # Topology construction parks (it is a collective), so it is
        # deferred to the first run() step; nothing in between touches
        # the clock or the trace.
        self.topo = None
        self._staged_bytes = 0
        self._needs_setup = True

    def _setup_comm_g(self):
        self._needs_setup = False
        self.topo = yield from self.ctx.dist_graph_create_adjacent_g(
            self.lg.neighbor_ranks)
        self.nbr_index = {q: k for k, q in enumerate(self.topo.neighbors)}
        self.send_bufs: list[list[int]] = [[] for _ in self.topo.neighbors]

    # ------------------------------------------------------------------
    def push(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> None:
        self.send_bufs[self.nbr_index[target_rank]].extend((int(ctx_id), x, y))
        self.ctx.alloc(TRIPLE_BYTES, "ncl-sendbuf")
        self._staged_bytes += TRIPLE_BYTES

    # ------------------------------------------------------------------
    def run(self, state: MatchingState) -> dict:
        return run_inline(self.run_g(state))

    def run_g(self, state: MatchingState):
        if self._needs_setup:
            yield from self._setup_comm_g()
        yield from state.start_g()
        iterations = 0
        while True:
            iterations += 1
            # Counts first (cheap, blocking — receivers must size buffers).
            counts = [len(b) // 3 for b in self.send_bufs]
            recv_counts = yield from self.topo.neighbor_alltoall_g(
                counts, nbytes_per_item=8)
            payloads = [np.array(b, dtype=np.int64) for b in self.send_bufs]
            nbytes_each = [c * TRIPLE_BYTES for c in counts]
            staged = self._staged_bytes

            recv_bytes_est = sum(int(c) * TRIPLE_BYTES for c in recv_counts)
            self.ctx.alloc(recv_bytes_est, "ncl-recvbuf")
            req = self.topo.ineighbor_alltoallv(payloads, nbytes_each=nbytes_each)

            # Swap buffers: pushes generated during the overlap window and
            # the processing below belong to the *next* exchange.
            for b in self.send_bufs:
                b.clear()
            self._staged_bytes = 0

            # Overlap window: PROCESSNEIGHBORS work deferred from the
            # previous round executes while the wire moves this round's
            # payload. (Blocking NCL drains immediately instead, leaving
            # nothing to hide transfers behind.)
            yield from state.drain_work_g()

            items, _ = yield from req.wait_g()
            self.ctx.free(staged, "ncl-sendbuf")
            for arr in items:
                for s in range(0, len(arr), 3):
                    yield from state.handle_g(
                        Ctx(int(arr[s])), int(arr[s + 1]), int(arr[s + 2]))
            self.ctx.free(recv_bytes_est, "ncl-recvbuf")
            # Matches found above stay queued; they are the next overlap
            # window's work. remaining() counts them, so termination is
            # not declared while work is deferred.
            done = yield from self.ctx.allreduce_g(state.remaining())
            if done == 0:
                break
        return {"iterations": iterations}

    def finalize(self, state: MatchingState) -> None:
        if self._staged_bytes:
            self.ctx.free(self._staged_bytes, "ncl-sendbuf")
            self._staged_bytes = 0
