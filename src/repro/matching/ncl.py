"""NCL — MPI-3 neighborhood-collectives backend (paper §IV-D(c)).

Table I mapping: Push = insert into a per-neighbor send buffer, Evoke =
blocking ``MPI_Neighbor_alltoall`` (counts) + ``MPI_Neighbor_alltoallv``
(payload), Process = scan the receive buffer.

Unlike NSR/RMA, nothing moves when pushed: an iteration's messages are
aggregated and shipped in one blocking collective over the distributed
graph topology. This is why NCL wins when the process graph is sparse
(one cheap exchange replaces thousands of tiny sends) and loses when it
is near-complete (each collective couples a rank to p-1 neighbors —
paper Fig. 4c, Tables III/IV).

Crash recovery (extension; see docs/fault_model.md): under a crash plan
the backend keeps a *cumulative* per-neighbor send log and ships
``(start, chunk)`` payloads tagged with the chunk's position in that
log; the receiver tracks a per-sender consumed count and skips overlap.
A neighborhood collective is completed per-rank, so a crash can strand
an exchange half-done — one side advanced its sent mark, the other
never received the chunk. Recovery therefore renounces the dead rank,
revokes the stale topology scope, rebuilds the process graph over the
survivors (epoch-keyed agreement), resets every sent mark to zero and
resends the full logs: at-least-once delivery plus exact dedup restores
the no-loss invariant. Termination uses the survivor agreement instead
of a world allreduce. The fault-free path is byte-identical to the
original backend.
"""

from __future__ import annotations

import numpy as np

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.state import MatchingState
from repro.mpisim.context import RankContext
from repro.mpisim.engine import run_inline
from repro.mpisim.errors import RankCrashed
from repro.mpisim.topology import DistGraphTopology


class NCLBackend:
    """Aggregated neighborhood-collective communication."""

    name = "ncl"

    def __init__(self, ctx: RankContext, lg: LocalGraph, options=None):
        self.options = options
        self.ctx = ctx
        self.lg = lg
        plan = ctx.fault_plan
        self._plan = plan
        self.fault_aware = plan is not None and plan.has_crashes()
        self._staged_bytes = 0
        self.epoch: tuple[int, ...] = ()
        self._recoveries = 0
        # Loop state lives on the instance so a checkpoint provider can
        # capture it while the rank is parked at a checkpoint tick.
        self._iterations = 0
        self._started = False
        self._resumed = False
        if self.fault_aware:
            # Setup moves into run(): construction collectives must be
            # survivor-safe. Send state is keyed by *rank* (not neighbor
            # slot) so it survives a topology rebuild.
            self.topo = None
            self._all_nbrs = sorted(set(int(q) for q in lg.neighbor_ranks))
            #: cumulative flat (ctx, x, y) triples ever pushed, per target
            self.sent_log: dict[int, list[int]] = {q: [] for q in self._all_nbrs}
            #: ints of sent_log[q] already shipped in a completed exchange
            self.sent_mark: dict[int, int] = {q: 0 for q in self._all_nbrs}
            #: triples consumed from each sender (dedup on resend overlap)
            self.consumed: dict[int, int] = {q: 0 for q in self._all_nbrs}
        else:
            # Setup collective deferred to the first run() step (it parks,
            # which must go through the yield protocol under the coroutine
            # engine; nothing in between touches the clock or trace). On
            # resume, topology and send buffers come from the checkpoint
            # (restore_checkpoint) instead — re-running the setup
            # collective would charge time the uninterrupted run never
            # spent.
            self.topo = None
        self._needs_setup = not (self.fault_aware or ctx.resuming)

    def _setup_comm_g(self):
        self._needs_setup = False
        self.topo = yield from self.ctx.dist_graph_create_adjacent_g(
            self.lg.neighbor_ranks)
        self.nbr_index = {q: k for k, q in enumerate(self.topo.neighbors)}
        self.send_bufs: list[list[int]] = [[] for _ in self.topo.neighbors]

    # ------------------------------------------------------------------
    def push(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> None:
        """Stage the triple for the next collective exchange."""
        if self.fault_aware:
            self.sent_log[target_rank].extend((int(ctx_id), x, y))
        else:
            self.send_bufs[self.nbr_index[target_rank]].extend((int(ctx_id), x, y))
        self.ctx.alloc(TRIPLE_BYTES, "ncl-sendbuf")
        self._staged_bytes += TRIPLE_BYTES

    def _evoke_and_process_g(self, state: MatchingState):
        """One aggregated exchange: counts alltoall, then payload alltoallv."""
        self.ctx.prof_stage("evoke")
        topo = self.topo
        counts = [len(b) // 3 for b in self.send_bufs]
        recv_counts = yield from topo.neighbor_alltoall_g(counts, nbytes_per_item=8)
        payloads = [np.array(b, dtype=np.int64) for b in self.send_bufs]
        nbytes_each = [c * TRIPLE_BYTES for c in counts]
        # Receive buffers are sized from the counts exchange; account them
        # for the duration of processing.
        recv_bytes = sum(int(c) * TRIPLE_BYTES for c in recv_counts)
        self.ctx.alloc(recv_bytes, "ncl-recvbuf")
        items, _ = yield from topo.neighbor_alltoallv_g(
            payloads, nbytes_each=nbytes_each)
        # Send buffers are free once the blocking collective returns.
        self.ctx.free(self._staged_bytes, "ncl-sendbuf")
        self._staged_bytes = 0
        for b in self.send_bufs:
            b.clear()
        self.ctx.prof_stage("process")
        handled = 0
        for arr in items:
            for s in range(0, len(arr), 3):
                yield from state.handle_g(
                    Ctx(int(arr[s])), int(arr[s + 1]), int(arr[s + 2]))
                handled += 1
        self.ctx.free(recv_bytes, "ncl-recvbuf")
        return handled

    # ------------------------------------------------------------------
    # crash-survivable path
    # ------------------------------------------------------------------
    def _exchange_logs_g(self, state: MatchingState):
        """One incremental exchange of cumulative-log chunks.

        Ships ``(start_triples, chunk)`` per surviving neighbor; the
        receiver drops the already-consumed prefix, so a post-recovery
        full-log resend (sent marks reset to zero) delivers each triple
        exactly once. Marks advance only after the collective returns —
        a raise mid-rendezvous leaves them untouched and the chunk is
        simply resent.
        """
        self.ctx.prof_stage("evoke")
        topo = self.topo
        nbrs = topo.neighbors
        items = []
        for q in nbrs:
            start = self.sent_mark[q]
            chunk = np.array(self.sent_log[q][start:], dtype=np.int64)
            items.append((start // 3, chunk))
        nbytes_each = [8 + int(arr.nbytes) for _, arr in items]
        recv_bytes = 0
        recv, _ = yield from topo.neighbor_alltoallv_g(
            items, nbytes_each=nbytes_each)
        for q in nbrs:
            self.sent_mark[q] = len(self.sent_log[q])
        self.ctx.prof_stage("process")
        handled = 0
        for q, (start, arr) in zip(nbrs, recv):
            have = self.consumed[q]
            if start > have:
                raise RuntimeError(
                    f"NCL log gap from rank {q}: chunk starts at triple "
                    f"{start} but only {have} consumed"
                )
            skip = (have - start) * 3
            fresh = arr[skip:]
            recv_bytes += int(fresh.nbytes)
            for s in range(0, len(fresh), 3):
                yield from state.handle_g(
                    Ctx(int(fresh[s])), int(fresh[s + 1]), int(fresh[s + 2])
                )
                handled += 1
            self.consumed[q] = have + len(fresh) // 3
        if recv_bytes:
            self.ctx.alloc(recv_bytes, "ncl-recvbuf")
            self.ctx.free(recv_bytes, "ncl-recvbuf")
        return handled

    def _setup_g(self, state: MatchingState):
        """(Re)build the survivor topology and schedule a full resync."""
        self.ctx.prof_stage("recovery")
        self.epoch = tuple(sorted(state.dead_ranks))
        live = [q for q in self._all_nbrs if q not in state.dead_ranks]
        self.topo = yield from self.ctx.shrink_rebuild_topology_g(
            live, epoch=self.epoch)
        if self._recoveries:
            # A half-completed exchange may have advanced a peer's sent
            # mark past data we never received: resend everything, the
            # consumed counters dedup the overlap.
            for q in live:
                self.sent_mark[q] = 0

    def _recover_g(self, state: MatchingState, blame: int):
        ctx = self.ctx
        ctx.prof_stage("recovery")
        for r in sorted(ctx.failed_ranks()):
            if r not in state.dead_ranks:
                if self._plan is None or self._plan.crash_time(r) is None:
                    # Detection is plan-driven: a partitioned-but-alive
                    # peer can never land here; the counter proves it.
                    ctx.counters().spurious_detections += 1
                yield from state.renounce_rank_g(r)
        if self.topo is not None:
            ctx.revoke_topology(self.topo, blame)
        self.topo = None
        self._recoveries += 1

    def _run_survivable_g(self, state: MatchingState):
        ctx = self.ctx
        if self._resumed:
            self._resumed = False
            yield from ctx.reissue_parked_wait_g()
        while True:
            try:
                if self.topo is None:
                    yield from self._setup_g(state)
                if not self._started:
                    yield from state.start_g()
                    self._started = True
                while True:
                    yield from ctx.checkpoint_tick_g()
                    self._iterations += 1
                    ctx.prof_iteration(self._iterations)
                    yield from self._exchange_logs_g(state)
                    ctx.prof_stage("push")
                    yield from state.drain_work_g()
                    ctx.prof_stage("terminate")
                    debt = state.remaining()
                    agreed = yield from ctx.agree_g(
                        debt, epoch=self.epoch, label="loop")
                    if int(agreed) == 0:
                        return {
                            "iterations": self._iterations,
                            "recoveries": self._recoveries,
                        }
            except RankCrashed as e:
                yield from self._recover_g(state, e.rank)

    # ------------------------------------------------------------------
    def run(self, state: MatchingState) -> dict:
        return run_inline(self.run_g(state))

    def run_g(self, state: MatchingState):
        if self.fault_aware:
            return (yield from self._run_survivable_g(state))
        ctx = self.ctx
        if self._needs_setup:
            yield from self._setup_comm_g()
        if self._resumed:
            self._resumed = False
            yield from ctx.reissue_parked_wait_g()
        else:
            yield from state.start_g()
        while True:
            # Coordinated-checkpoint safepoint: parks here (charge-free)
            # when a cut is due; a resumed run re-enters at this exact
            # point and the tick no-ops (the next due time was advanced
            # before the snapshot was taken).
            yield from ctx.checkpoint_tick_g()
            self._iterations += 1
            ctx.prof_iteration(self._iterations)
            yield from self._evoke_and_process_g(state)
            ctx.prof_stage("push")
            yield from state.drain_work_g()
            ctx.prof_stage("terminate")
            done = yield from ctx.allreduce_g(state.remaining())
            if done == 0:
                break
        return {"iterations": self._iterations}

    # ------------------------------------------------------------------
    # checkpoint capture/restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Backend loop/buffer state for a coordinated checkpoint.

        Topology handles are captured as ``(scope_id, adjacency, epoch)``
        and rebuilt communication-free on resume.
        """
        blob: dict = {
            "iterations": self._iterations,
            "started": self._started,
            "recoveries": self._recoveries,
            "epoch": self.epoch,
            "staged_bytes": self._staged_bytes,
            "topo": None
            if self.topo is None
            else (self.topo.scope_id, self.topo.adjacency, self.topo.epoch),
        }
        if self.fault_aware:
            blob["sent_log"] = self.sent_log
            blob["sent_mark"] = self.sent_mark
            blob["consumed"] = self.consumed
        else:
            blob["send_bufs"] = self.send_bufs
        return blob

    def restore_checkpoint(self, blob: dict) -> None:
        """Adopt a snapshot; the next :meth:`run` resumes mid-loop."""
        self._iterations = blob["iterations"]
        self._started = blob["started"]
        self._recoveries = blob["recoveries"]
        self.epoch = blob["epoch"]
        self._staged_bytes = blob["staged_bytes"]
        if blob["topo"] is not None:
            scope_id, adjacency, epoch = blob["topo"]
            self.topo = DistGraphTopology(
                self.ctx, scope_id, adjacency, epoch=epoch
            )
        if self.fault_aware:
            self.sent_log = blob["sent_log"]
            self.sent_mark = blob["sent_mark"]
            self.consumed = blob["consumed"]
        else:
            self.send_bufs = blob["send_bufs"]
            self.nbr_index = {
                q: k for k, q in enumerate(self.topo.neighbors)
            }
        self._resumed = True

    def finalize(self, state: MatchingState) -> None:
        if self._staged_bytes:
            self.ctx.free(self._staged_bytes, "ncl-sendbuf")
            self._staged_bytes = 0
