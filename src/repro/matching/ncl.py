"""NCL — MPI-3 neighborhood-collectives backend (paper §IV-D(c)).

Table I mapping: Push = insert into a per-neighbor send buffer, Evoke =
blocking ``MPI_Neighbor_alltoall`` (counts) + ``MPI_Neighbor_alltoallv``
(payload), Process = scan the receive buffer.

Unlike NSR/RMA, nothing moves when pushed: an iteration's messages are
aggregated and shipped in one blocking collective over the distributed
graph topology. This is why NCL wins when the process graph is sparse
(one cheap exchange replaces thousands of tiny sends) and loses when it
is near-complete (each collective couples a rank to p-1 neighbors —
paper Fig. 4c, Tables III/IV).
"""

from __future__ import annotations

import numpy as np

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.state import MatchingState
from repro.mpisim.context import RankContext


class NCLBackend:
    """Aggregated neighborhood-collective communication."""

    name = "ncl"

    def __init__(self, ctx: RankContext, lg: LocalGraph, options=None):
        self.options = options
        self.ctx = ctx
        self.lg = lg
        self.topo = ctx.dist_graph_create_adjacent(lg.neighbor_ranks)
        self.nbr_index = {q: k for k, q in enumerate(self.topo.neighbors)}
        self.send_bufs: list[list[int]] = [[] for _ in self.topo.neighbors]
        self._staged_bytes = 0

    # ------------------------------------------------------------------
    def push(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> None:
        """Stage the triple for the next collective exchange."""
        self.send_bufs[self.nbr_index[target_rank]].extend((int(ctx_id), x, y))
        self.ctx.alloc(TRIPLE_BYTES, "ncl-sendbuf")
        self._staged_bytes += TRIPLE_BYTES

    def _evoke_and_process(self, state: MatchingState) -> int:
        """One aggregated exchange: counts alltoall, then payload alltoallv."""
        topo = self.topo
        counts = [len(b) // 3 for b in self.send_bufs]
        recv_counts = topo.neighbor_alltoall(counts, nbytes_per_item=8)
        payloads = [np.array(b, dtype=np.int64) for b in self.send_bufs]
        nbytes_each = [c * TRIPLE_BYTES for c in counts]
        # Receive buffers are sized from the counts exchange; account them
        # for the duration of processing.
        recv_bytes = sum(int(c) * TRIPLE_BYTES for c in recv_counts)
        self.ctx.alloc(recv_bytes, "ncl-recvbuf")
        items, _ = topo.neighbor_alltoallv(payloads, nbytes_each=nbytes_each)
        # Send buffers are free once the blocking collective returns.
        self.ctx.free(self._staged_bytes, "ncl-sendbuf")
        self._staged_bytes = 0
        for b in self.send_bufs:
            b.clear()
        handled = 0
        for arr in items:
            for s in range(0, len(arr), 3):
                state.handle(Ctx(int(arr[s])), int(arr[s + 1]), int(arr[s + 2]))
                handled += 1
        self.ctx.free(recv_bytes, "ncl-recvbuf")
        return handled

    # ------------------------------------------------------------------
    def run(self, state: MatchingState) -> dict:
        state.start()
        iterations = 0
        while True:
            iterations += 1
            self._evoke_and_process(state)
            state.drain_work()
            if self.ctx.allreduce(state.remaining()) == 0:
                break
        return {"iterations": iterations}

    def finalize(self, state: MatchingState) -> None:
        if self._staged_bytes:
            self.ctx.free(self._staged_bytes, "ncl-sendbuf")
            self._staged_bytes = 0
