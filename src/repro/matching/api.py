"""High-level one-call API for distributed half-approximate matching.

>>> from repro.graph.generators import rmat_graph
>>> from repro.matching import run_matching
>>> g = rmat_graph(10, seed=1)
>>> res = run_matching(g, nprocs=8, model="ncl")
>>> res.weight, res.makespan  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.distribution import partition_graph
from repro.matching.driver import MatchingOptions, matching_rank_main
from repro.matching.serial import matching_weight
from repro.mpisim.counters import RunCounters
from repro.mpisim.engine import Engine, EngineResult
from repro.mpisim.faults import FaultPlan
from repro.mpisim.machine import MachineModel, cori_aries


@dataclass
class MatchingRunResult:
    """Everything one distributed matching run produced."""

    model: str
    nprocs: int
    mate: np.ndarray  #: global mate array (survivor-projected on crashes)
    weight: float  #: total matched weight
    makespan: float  #: simulated runtime (seconds)
    iterations: int  #: max backend iterations over surviving ranks
    counters: RunCounters  #: per-rank op counters + comm matrices
    engine: EngineResult
    rank_results: list[dict]  #: surviving ranks only (crashed yield none)
    crashed_ranks: tuple[int, ...] = ()
    dead_ranges: list[tuple[int, int]] = field(default_factory=list)
    #: [lo, hi) vertex ranges owned by crashed ranks

    @property
    def num_matched_edges(self) -> int:
        return int(np.count_nonzero(self.mate >= 0)) // 2

    def total_messages(self) -> int:
        c = self.counters
        return (
            c.p2p.total_messages()
            + c.rma.total_messages()
            + c.ncl.total_messages()
        )

    def fault_totals(self) -> dict[str, int]:
        """Run-wide fault/reliability counter sums (all zero when clean)."""
        return self.counters.fault_totals()

    @property
    def profile(self):
        """The span profile, when the run had ``profile=True`` (else None)."""
        return self.engine.profile


def run_matching(
    g: CSRGraph,
    nprocs: int,
    model: str = "nsr",
    machine: MachineModel | None = None,
    options: MatchingOptions | None = None,
    *,
    dist=None,
    max_ops: int | None = None,
    faults: FaultPlan | None = None,
    trace: bool = False,
    profile: bool = False,
    compute_weight: bool = True,
    scheduler: str = "heap",
) -> MatchingRunResult:
    """Partition ``g`` over ``nprocs`` simulated ranks and match it.

    ``model`` is one of ``nsr`` / ``rma`` / ``ncl`` / ``mbp`` / ``incl``.
    ``dist`` optionally overrides the 1D block distribution (e.g.
    :func:`repro.graph.distribution.edge_balanced_distribution`).
    ``faults`` injects a deterministic fault plan (message faults require
    ``model="nsr"``, whose reliable-delivery shim masks them — see
    docs/fault_model.md). When ranks crash, the returned mate array is
    projected onto the surviving subgraph. ``scheduler`` selects the
    engine scheduling implementation (``"heap"`` or ``"reference"``; see
    docs/engine_scheduling.md) — both are bit-identical in virtual time.
    ``profile=True`` turns on the span profiler (docs/profiling.md): the
    result's :attr:`MatchingRunResult.profile` then carries a
    phase-attributed :class:`~repro.mpisim.tracing.RunProfile`.
    """
    machine = machine or cori_aries()
    options = options or MatchingOptions()
    parts = partition_graph(g, nprocs, dist=dist)
    engine = Engine(
        nprocs,
        machine,
        max_ops=max_ops if max_ops is not None else options.max_ops,
        max_vtime=options.max_vtime,
        trace=trace,
        profile=profile,
        faults=faults,
        scheduler=scheduler,
    )
    result = engine.run(matching_rank_main, args=(parts, model, options))

    from repro.matching.verify import assemble_global_mate, restrict_mate_to_survivors

    crashed = tuple(result.crashed_ranks)
    survivors = [rr for rr in result.rank_results if rr is not None]
    mate = assemble_global_mate(survivors, g.num_vertices)
    dead_ranges = [(parts[r].lo, parts[r].hi) for r in crashed]
    if dead_ranges:
        mate = restrict_mate_to_survivors(mate, dead_ranges)
    weight = matching_weight(g, mate) if compute_weight else float("nan")
    iterations = max((rr["iterations"] for rr in survivors), default=0)
    return MatchingRunResult(
        model=model,
        nprocs=nprocs,
        mate=mate,
        weight=weight,
        makespan=result.makespan,
        iterations=iterations,
        counters=result.counters,
        engine=result,
        rank_results=survivors,
        crashed_ranks=crashed,
        dead_ranges=dead_ranges,
    )
