"""High-level one-call API for distributed half-approximate matching.

>>> from repro.graph.generators import rmat_graph
>>> from repro.matching import run_matching
>>> g = rmat_graph(10, seed=1)
>>> res = run_matching(g, nprocs=8, model="ncl")
>>> res.weight, res.makespan  # doctest: +SKIP
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.distribution import partition_graph
from repro.matching.config import RunConfig
from repro.matching.driver import MatchingOptions, matching_rank_main
from repro.matching.serial import matching_weight
from repro.mpisim.counters import RunCounters
from repro.mpisim.engine import Engine, EngineResult
from repro.mpisim.faults import FaultPlan
from repro.mpisim.machine import MachineModel, cori_aries
from repro.mpisim.recovery import RecoveryConfig


@dataclass
class MatchingRunResult:
    """Everything one distributed matching run produced."""

    model: str
    nprocs: int
    mate: np.ndarray  #: global mate array (survivor-projected on crashes)
    weight: float  #: total matched weight
    makespan: float  #: simulated runtime (seconds)
    iterations: int  #: max backend iterations over surviving ranks
    counters: RunCounters  #: per-rank op counters + comm matrices
    engine: EngineResult
    rank_results: list[dict]  #: surviving ranks only (crashed yield none)
    crashed_ranks: tuple[int, ...] = ()
    dead_ranges: list[tuple[int, int]] = field(default_factory=list)
    #: [lo, hi) vertex ranges owned by crashed ranks
    recovery: dict | None = None  #: rollback-recovery report when the run
    #: had ``spares > 0`` (recoveries, spares used, rollback vtime, cuts
    #: lost to buddy death, mean recovery latency, replica traffic)

    @property
    def num_matched_edges(self) -> int:
        return int(np.count_nonzero(self.mate >= 0)) // 2

    def total_messages(self) -> int:
        c = self.counters
        return (
            c.p2p.total_messages()
            + c.rma.total_messages()
            + c.ncl.total_messages()
        )

    def fault_totals(self) -> dict[str, int]:
        """Run-wide fault/reliability counter sums (all zero when clean)."""
        return self.counters.fault_totals()

    @property
    def profile(self):
        """The span profile, when the run had ``profile=True`` (else None)."""
        return self.engine.profile


class _Unset:
    """Sentinel distinguishing "kwarg not passed" from an explicit None."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()

#: legacy run_matching kwargs and their RunConfig field names (identical)
_LEGACY_KWARGS = (
    "machine",
    "options",
    "dist",
    "max_ops",
    "faults",
    "trace",
    "profile",
    "compute_weight",
    "scheduler",
)


def run_matching(
    g: CSRGraph,
    nprocs: int,
    model: str = "nsr",
    machine: MachineModel | None | _Unset = _UNSET,
    options: MatchingOptions | None | _Unset = _UNSET,
    *,
    config: RunConfig | None = None,
    dist=_UNSET,
    max_ops: int | None | _Unset = _UNSET,
    faults: FaultPlan | None | _Unset = _UNSET,
    trace: bool | _Unset = _UNSET,
    profile: bool | _Unset = _UNSET,
    compute_weight: bool | _Unset = _UNSET,
    scheduler: str | _Unset = _UNSET,
) -> MatchingRunResult:
    """Partition ``g`` over ``nprocs`` simulated ranks and match it.

    ``model`` is one of ``nsr`` / ``rma`` / ``ncl`` / ``mbp`` / ``incl``
    / ``nsr-agg``; everything else about the run lives in ``config``, a
    :class:`~repro.matching.config.RunConfig`:

    * ``config.dist`` overrides the 1D block distribution (e.g.
      :func:`repro.graph.distribution.edge_balanced_distribution`).
    * ``config.faults`` injects a deterministic fault plan (message
      faults require ``model="nsr"``, whose reliable-delivery shim masks
      them — see docs/fault_model.md). When ranks crash, the returned
      mate array is projected onto the surviving subgraph.
    * ``config.scheduler`` selects the engine scheduling implementation
      (``"heap"`` or ``"reference"``; see docs/engine_scheduling.md) —
      both are bit-identical in virtual time.
    * ``config.profile=True`` turns on the span profiler
      (docs/profiling.md): the result's
      :attr:`MatchingRunResult.profile` then carries a phase-attributed
      :class:`~repro.mpisim.tracing.RunProfile`.

    The pre-RunConfig keyword arguments (``machine=``, ``options=``,
    ``dist=``, ...) still work and produce bit-identical results — the
    shim just packs them into a :class:`RunConfig` — but emit a
    :class:`DeprecationWarning`; see docs/api.md for the migration
    guide. Mixing them with ``config=`` is an error.
    """
    passed = {
        name: value
        for name, value in (
            ("machine", machine),
            ("options", options),
            ("dist", dist),
            ("max_ops", max_ops),
            ("faults", faults),
            ("trace", trace),
            ("profile", profile),
            ("compute_weight", compute_weight),
            ("scheduler", scheduler),
        )
        if value is not _UNSET
    }
    if passed:
        if config is not None:
            raise TypeError(
                "run_matching: cannot mix config= with legacy keyword "
                f"argument(s) {sorted(passed)}; fold them into the RunConfig"
            )
        warnings.warn(
            "run_matching keyword arguments "
            f"{sorted(passed)} are deprecated; pass "
            "config=RunConfig(...) instead (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        config = RunConfig(**passed)
    elif config is None:
        config = RunConfig()

    machine = config.machine or cori_aries()
    options = config.options or MatchingOptions()
    recovery = None
    if config.spares > 0:
        if config.checkpoint is None:
            raise ValueError(
                "RunConfig(spares=...) turns on rollback-recovery, which "
                "needs coordinated checkpoints to roll back to; also set "
                "checkpoint=CheckpointConfig(interval=...)"
            )
        recovery = RecoveryConfig(spares=config.spares, replicas=config.replicas)
    parts = partition_graph(g, nprocs, dist=config.dist)
    engine = Engine(
        nprocs,
        machine,
        max_ops=config.max_ops if config.max_ops is not None else options.max_ops,
        max_vtime=options.max_vtime,
        trace=config.trace,
        profile=config.profile,
        faults=config.faults,
        scheduler=config.scheduler,
        checkpoint=config.checkpoint,
        kill_at=config.kill_at,
        restore=config.restore,
        engine=config.engine,
        recovery=recovery,
    )
    result = engine.run(matching_rank_main, args=(parts, model, options))

    from repro.matching.verify import assemble_global_mate, restrict_mate_to_survivors

    crashed = tuple(result.crashed_ranks)
    survivors = [rr for rr in result.rank_results if rr is not None]
    mate = assemble_global_mate(survivors, g.num_vertices)
    dead_ranges = [(parts[r].lo, parts[r].hi) for r in crashed]
    if dead_ranges:
        mate = restrict_mate_to_survivors(mate, dead_ranges)
    weight = matching_weight(g, mate) if config.compute_weight else float("nan")
    iterations = max((rr["iterations"] for rr in survivors), default=0)
    return MatchingRunResult(
        model=model,
        nprocs=nprocs,
        mate=mate,
        weight=weight,
        makespan=result.makespan,
        iterations=iterations,
        counters=result.counters,
        engine=result,
        rank_results=survivors,
        crashed_ranks=crashed,
        dead_ranges=dead_ranges,
        recovery=result.recovery,
    )
