"""Serial half-approximate weighted matching algorithms (paper §III).

Two equivalent-quality algorithms:

* :func:`greedy_matching` — Avis's sorted-edge greedy: consider edges in
  nonincreasing weight order, add when both endpoints are free. Guaranteed
  half-approximate.
* :func:`locally_dominant_matching` — Preis/Manne-Bisseling pointer-based
  algorithm (the paper's Algorithm 2): no global sort, iteratively match
  mutually-pointing vertices.

With a *total order* on edge weights both produce the **same, unique**
matching: greedy consumes edges in the total order, and an edge is locally
dominant exactly when greedy would pick it. All repro generators add a
hash-based jitter making weights distinct, so this uniqueness is the
cross-implementation oracle used throughout the test suite. For safety
against exact ties the comparison key is ``(weight, edge_hash(u, v))`` —
the paper's hash-based tie-breaking fix for pathological uniform-weight
inputs (§III).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.util.hashing import edge_hash_array

NO_MATE = -1


@dataclass(frozen=True)
class MatchingResult:
    """A matching as a mate array: ``mate[v]`` is v's partner or -1."""

    mate: np.ndarray
    weight: float
    rounds: int = 0  #: pointer-recalculation passes (locally-dominant only)

    @property
    def num_matched_edges(self) -> int:
        return int(np.count_nonzero(self.mate >= 0)) // 2

    def pairs(self) -> list[tuple[int, int]]:
        out = []
        for v, u in enumerate(self.mate):
            if u >= 0 and v < u:
                out.append((v, int(u)))
        return out


def _edge_keys(g: CSRGraph) -> np.ndarray:
    """Tie-break component per directed CSR slot (same for both ends)."""
    n = g.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.xadj))
    return edge_hash_array(src, g.adjncy)


def matching_weight(g: CSRGraph, mate: np.ndarray) -> float:
    total = 0.0
    for v in range(g.num_vertices):
        u = int(mate[v])
        if u >= 0 and v < u:
            total += g.edge_weight(v, u)
    return total


def greedy_matching(g: CSRGraph) -> MatchingResult:
    """Avis's half-approx greedy over edges sorted by (weight, hash) desc."""
    u, v, w = g.edge_list()
    h = edge_hash_array(u, v)
    order = np.lexsort((h, w))[::-1]  # descending (w, h)
    mate = np.full(g.num_vertices, NO_MATE, dtype=np.int64)
    weight = 0.0
    for i in order:
        a, b = int(u[i]), int(v[i])
        if mate[a] == NO_MATE and mate[b] == NO_MATE:
            mate[a] = b
            mate[b] = a
            weight += float(w[i])
    return MatchingResult(mate=mate, weight=weight)


def locally_dominant_matching(g: CSRGraph) -> MatchingResult:
    """Pointer-based locally-dominant matching (paper Algorithm 2).

    Phase 1 points every vertex at its heaviest neighbor and matches
    mutual pointers; phase 2 processes neighbors of matched vertices,
    recomputing pointers until no new edges can be added.
    """
    n = g.num_vertices
    keys = _edge_keys(g)
    mate = np.full(n, NO_MATE, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    dead = np.zeros(n, dtype=bool)  # no available neighbor remains
    pointer = np.full(n, NO_MATE, dtype=np.int64)

    def find_mate(x: int) -> int:
        """argmax_{available y in N(x)} (w, key); NO_MATE if none."""
        nbrs = g.neighbors(x)
        ws = g.neighbor_weights(x)
        ks = keys[g.xadj[x] : g.xadj[x + 1]]
        best = NO_MATE
        best_key: tuple[float, int] | None = None
        for j in range(len(nbrs)):
            y = int(nbrs[j])
            if matched[y] or dead[y]:
                continue
            cand = (float(ws[j]), int(ks[j]))
            if best_key is None or cand > best_key:
                best_key = cand
                best = y
        return best

    queue: deque[int] = deque()
    weight = 0.0
    rounds = 0

    def try_match(x: int) -> None:
        nonlocal weight
        y = find_mate(x)
        pointer[x] = y
        if y == NO_MATE:
            dead[x] = True
            return
        if pointer[y] == x:
            mate[x] = y
            mate[y] = x
            matched[x] = matched[y] = True
            weight += g.edge_weight(x, y)
            queue.append(x)
            queue.append(y)

    for v in range(n):
        try_match(v)

    while queue:
        rounds += 1
        v = queue.popleft()
        for u in g.neighbors(v):
            u = int(u)
            if matched[u] or dead[u]:
                continue
            if pointer[u] == v:
                try_match(u)

    return MatchingResult(mate=mate, weight=weight, rounds=rounds)


def exact_matching_weight(g: CSRGraph) -> float:
    """Maximum-weight matching via networkx (small instances; test oracle)."""
    from repro.graph.csr import to_networkx

    G = to_networkx(g)
    import networkx as nx

    m = nx.max_weight_matching(G, maxcardinality=False)
    return sum(G[a][b]["weight"] for a, b in m)
