"""NSR-AGG — Send-Recv matching over the message-aggregation layer.

The ablation backend between NSR and NCL: it keeps NSR's asynchronous
Send-Recv semantics and purely local termination (no collectives at all),
but routes every Push through a
:class:`~repro.mpisim.aggregate.MessageAggregator`, so same-destination
triples coalesce into batched wire messages. Table I mapping: Push =
append to a per-destination coalescing lane, Evoke = probe + unpack one
*batch* at a time, Process = dispatch the coalesced triples.

Lanes accumulate across productive iterations and flush at every
*blocking* boundary — before the rank waits on the wire or leaves the
loop, so no triple ever sits buffered while its target depends on it
(the invariant NSR's local-termination argument needs). Flushing on
every iteration would shrink the coalescing window to one poll's worth
of traffic; flushing only when out of local work lets whole proposal
cascades ride one batch. Hot lanes additionally auto-flush at the
configured byte or message-count threshold
(``MatchingOptions.agg_flush_bytes`` / ``agg_flush_count``).

Comparing ``nsr-agg`` against ``nsr`` and ``ncl`` isolates how much of
NCL's advantage (paper Tables III/IV, Fig. 4) is *pure aggregation*
versus the collective machinery itself — the question the
``ablate-aggregation`` experiment quantifies.

Fault tolerance: rank crashes are handled NSR-style (renounce the dead
rank's cross edges and finish on the survivor subgraph), and messages
still buffered for a detected-dead destination are dropped and reported
via the ``agg_dropped_dead`` counter. Message-fault plans (drop/dup/
delay) are **not** supported — the aggregator has no ack/retry shim —
and are rejected at construction.
"""

from __future__ import annotations

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.state import MatchingState
from repro.mpisim.context import RankContext

#: lane auto-flush defaults: the byte threshold sits at the eager limit's
#: order of magnitude so only pathologically hot lanes flush early; the
#: normal case is one batch per destination per blocking boundary.
DEFAULT_FLUSH_BYTES = 8192
DEFAULT_FLUSH_COUNT = None
#: how long a rank lingers (virtual seconds) for more coalescable
#: traffic before flushing, once it runs out of local work — the
#: aggregation timer; a few network latencies wide, so one linger spans
#: a whole wave of in-flight proposals
DEFAULT_FLUSH_DELAY = 5e-6


class NSRAggBackend:
    """Send-Recv with same-destination message coalescing."""

    name = "nsr-agg"
    #: batched unpacking amortizes the per-message software dispatch that
    #: costs plain NSR handle_scale=14 (paper §V-B: derived from the
    #: NSR/NCL runtime gap); one probe+recv covers a whole batch.
    handle_scale = 2.0

    def __init__(self, ctx: RankContext, lg: LocalGraph, options=None):
        self.ctx = ctx
        self.lg = lg
        self.options = options
        plan = ctx.fault_plan
        if plan is not None and plan.needs_reliability():
            raise ValueError(
                "nsr-agg does not support message-fault plans (the "
                "aggregator has no ack/retry channel); use the nsr "
                "backend for drop/dup/delay injection"
            )
        self.fault_aware = plan is not None and plan.has_crashes()
        # Same fixed per-peer footprint as NSR (request tables + eager
        # pool), so nsr vs nsr-agg memory differences are transport-only.
        deg = max(1, len(lg.neighbor_ranks))
        self._fixed_bytes = (
            64 * deg + ctx.machine.eager_pool_per_peer_bytes * len(lg.neighbor_ranks)
        )
        ctx.alloc(self._fixed_bytes, "p2p-tables")

        flush_bytes = getattr(options, "agg_flush_bytes", DEFAULT_FLUSH_BYTES)
        flush_count = getattr(options, "agg_flush_count", DEFAULT_FLUSH_COUNT)
        self.flush_delay = getattr(options, "agg_flush_delay", DEFAULT_FLUSH_DELAY)
        self.agg = ctx.aggregator(
            flush_bytes=flush_bytes, flush_count=flush_count
        )
        self._staged_bytes = 0

    # ------------------------------------------------------------------
    def push(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> None:
        """Stage the triple in the target's coalescing lane."""
        self.agg.append(target_rank, int(ctx_id), (x, y), TRIPLE_BYTES)
        self.ctx.alloc(TRIPLE_BYTES, "agg-sendbuf")
        self._staged_bytes += TRIPLE_BYTES

    def _deliver(self, src: int, user_tag: int, payload) -> None:
        x, y = payload
        self._state.handle(Ctx(user_tag), x, y)

    # ------------------------------------------------------------------
    def _flush_boundary(self) -> None:
        """Ship every lane; runs before any block or loop exit."""
        self.agg.flush_all()
        if self._staged_bytes:
            self.ctx.free(self._staged_bytes, "agg-sendbuf")
            self._staged_bytes = 0

    def run(self, state: MatchingState) -> dict:
        """NSR's event loop with batch transport and boundary flushes."""
        ctx = self.ctx
        agg = self.agg
        self._state = state
        state.start()
        iterations = 0
        lingered = False
        while True:
            iterations += 1
            ctx.prof_iteration(iterations)
            if self.fault_aware:
                ctx.prof_stage("recovery")
                for r in ctx.failed_ranks():
                    if r not in state.dead_ranks:
                        state.renounce_rank(r)
                        agg.drop_rank(r)
            ctx.prof_stage("evoke")
            progressed = agg.poll(self._deliver) > 0
            if state.work:
                ctx.prof_stage("push")
                state.drain_work()
                progressed = True
            if progressed:
                lingered = False
                continue
            if state.locally_done():
                # Final responses (REJECT/INVALID to peers still waiting
                # on us) must go on the wire before this rank leaves.
                self._flush_boundary()
                break
            # Out of local work. If messages are staged, linger one timer
            # period first: in-flight traffic that lands within it gets
            # coalesced into the same batches (and resets the timer).
            if (
                self.flush_delay is not None
                and not lingered
                and agg.pending_messages() > 0
            ):
                lingered = True
                ctx.probe(deadline=ctx.now + self.flush_delay)
                continue
            # Timer expired (or nothing staged): ship everything — nothing
            # may stay buffered while peers wait on us — then fast-forward
            # to the next arrival.
            self._flush_boundary()
            lingered = False
            ctx.probe()
        return {"iterations": iterations}

    def finalize(self, state: MatchingState) -> None:
        self.ctx.free(self._fixed_bytes, "p2p-tables")
