"""NSR-AGG — Send-Recv matching over the message-aggregation layer.

The ablation backend between NSR and NCL: it keeps NSR's asynchronous
Send-Recv semantics and purely local termination (no collectives at all),
but routes every Push through a
:class:`~repro.mpisim.aggregate.MessageAggregator`, so same-destination
triples coalesce into batched wire messages. Table I mapping: Push =
append to a per-destination coalescing lane, Evoke = probe + unpack one
*batch* at a time, Process = dispatch the coalesced triples.

Lanes accumulate across productive iterations and flush at every
*blocking* boundary — before the rank waits on the wire or leaves the
loop, so no triple ever sits buffered while its target depends on it
(the invariant NSR's local-termination argument needs). Flushing on
every iteration would shrink the coalescing window to one poll's worth
of traffic; flushing only when out of local work lets whole proposal
cascades ride one batch. Hot lanes additionally auto-flush at the
configured byte or message-count threshold
(``MatchingOptions.agg_flush_bytes`` / ``agg_flush_count``).

Comparing ``nsr-agg`` against ``nsr`` and ``ncl`` isolates how much of
NCL's advantage (paper Tables III/IV, Fig. 4) is *pure aggregation*
versus the collective machinery itself — the question the
``ablate-aggregation`` experiment quantifies.

Fault tolerance: rank crashes are handled NSR-style (renounce the dead
rank's cross edges and finish on the survivor subgraph), and messages
still buffered for a detected-dead destination are dropped and reported
via the ``agg_dropped_dead`` counter. Message-fault plans (drop/dup/
delay) and network partitions are masked by the aggregator's own
batch-level ack/retry protocol (``reliable=True`` on the
:class:`~repro.mpisim.aggregate.MessageAggregator`): a lost batch is
retransmitted whole, a duplicated batch is suppressed by its sequence
number, and a batch trapped behind a partition is re-sent after the
heal — so the backend computes the identical matching to ``nsr`` under
the same fault plan.
"""

from __future__ import annotations

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.state import MatchingState
from repro.mpisim.context import RankContext
from repro.mpisim.engine import run_inline

#: lane auto-flush defaults: the byte threshold sits at the eager limit's
#: order of magnitude so only pathologically hot lanes flush early; the
#: normal case is one batch per destination per blocking boundary.
DEFAULT_FLUSH_BYTES = 8192
DEFAULT_FLUSH_COUNT = None
#: how long a rank lingers (virtual seconds) for more coalescable
#: traffic before flushing, once it runs out of local work — the
#: aggregation timer; a few network latencies wide, so one linger spans
#: a whole wave of in-flight proposals
DEFAULT_FLUSH_DELAY = 5e-6


class NSRAggBackend:
    """Send-Recv with same-destination message coalescing."""

    name = "nsr-agg"
    #: batched unpacking amortizes the per-message software dispatch that
    #: costs plain NSR handle_scale=14 (paper §V-B: derived from the
    #: NSR/NCL runtime gap); one probe+recv covers a whole batch.
    handle_scale = 2.0

    def __init__(self, ctx: RankContext, lg: LocalGraph, options=None):
        self.ctx = ctx
        self.lg = lg
        self.options = options
        plan = ctx.fault_plan
        self._plan = plan
        self.fault_aware = plan is not None and plan.has_crashes()
        want_reliable = getattr(options, "reliable", None)
        if want_reliable is None:
            want_reliable = plan is not None and plan.needs_reliability()
        self.reliable = bool(want_reliable)
        # Same fixed per-peer footprint as NSR (request tables + eager
        # pool), so nsr vs nsr-agg memory differences are transport-only.
        deg = max(1, len(lg.neighbor_ranks))
        self._fixed_bytes = (
            64 * deg + ctx.machine.eager_pool_per_peer_bytes * len(lg.neighbor_ranks)
        )
        if not ctx.resuming:
            # Resume: the restored counters already carry this allocation.
            ctx.alloc(self._fixed_bytes, "p2p-tables")

        flush_bytes = getattr(options, "agg_flush_bytes", DEFAULT_FLUSH_BYTES)
        flush_count = getattr(options, "agg_flush_count", DEFAULT_FLUSH_COUNT)
        self.flush_delay = getattr(options, "agg_flush_delay", DEFAULT_FLUSH_DELAY)
        self.agg = ctx.aggregator(
            flush_bytes=flush_bytes,
            flush_count=flush_count,
            reliable=self.reliable,
            rto=getattr(options, "rto", None),
            rto_max=getattr(options, "rto_max", None),
            max_retries=getattr(options, "max_retries", 25),
        )
        self._staged_bytes = 0

        # Same post-quiescence linger policy as NSR's reliable channel:
        # outlive a peer's worst-case backed-off retransmission (plus its
        # injected delay), and never start the clock before the last
        # partition heals — deferred retransmissions arrive only after it.
        if self.reliable:
            delay_max = plan.delay_max if plan is not None else 0.0
            self._linger = 3.0 * self.agg.rto_max + delay_max
        self._quiet_floor = (
            max((w.t_end for w in plan.partitions), default=0.0)
            if plan is not None
            else 0.0
        )

        # Loop state lives on the instance so a checkpoint provider can
        # capture it while the rank is parked inside a probe.
        self._iterations = 0
        self._lingered = False
        self._quiet_until: float | None = None
        self._resumed = False

    # ------------------------------------------------------------------
    def push(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> None:
        """Stage the triple in the target's coalescing lane."""
        run_inline(self.push_g(ctx_id, target_rank, x, y))

    def push_g(self, ctx_id: Ctx, target_rank: int, x: int, y: int):
        yield from self.agg.append_g(
            target_rank, int(ctx_id), (x, y), TRIPLE_BYTES)
        self.ctx.alloc(TRIPLE_BYTES, "agg-sendbuf")
        self._staged_bytes += TRIPLE_BYTES

    def _deliver(self, src: int, user_tag: int, payload):
        # Generator handler: the aggregator's poll path drives it under
        # either engine (plain poll run_inlines the same normalization).
        x, y = payload
        yield from self._state.handle_g(Ctx(user_tag), x, y)

    # ------------------------------------------------------------------
    def _flush_boundary_g(self):
        """Ship every lane; runs before any block or loop exit."""
        yield from self.agg.flush_all_g()
        if self._staged_bytes:
            self.ctx.free(self._staged_bytes, "agg-sendbuf")
            self._staged_bytes = 0

    def run(self, state: MatchingState) -> dict:
        return run_inline(self.run_g(state))

    def run_g(self, state: MatchingState):
        """NSR's event loop with batch transport and boundary flushes."""
        ctx = self.ctx
        agg = self.agg
        rc = ctx.counters()
        self._state = state
        if self._resumed:
            self._resumed = False
            yield from ctx.reissue_parked_wait_g()
        else:
            yield from state.start_g()
        while True:
            yield from ctx.checkpoint_tick_g()
            self._iterations += 1
            ctx.prof_iteration(self._iterations)
            if self.fault_aware:
                ctx.prof_stage("recovery")
                for r in ctx.failed_ranks():
                    if r not in state.dead_ranks:
                        if self._plan is None or self._plan.crash_time(r) is None:
                            # Detection is plan-driven: a partitioned-but-
                            # alive peer can never land here; prove it.
                            rc.spurious_detections += 1
                        yield from state.renounce_rank_g(r)
                        agg.drop_rank(r)
            ctx.prof_stage("evoke")
            acks_before = rc.agg_acks_sent
            progressed = (yield from agg.poll_g(self._deliver)) > 0
            if rc.agg_acks_sent > acks_before:
                # Any batch receipt (dups included) restarts the linger
                # clock: the sender clearly had not seen our ack yet.
                self._quiet_until = None
            yield from agg.service_g(ctx.now, may_abandon=state.locally_done())
            if state.work:
                ctx.prof_stage("push")
                yield from state.drain_work_g()
                progressed = True
            if progressed:
                self._lingered = False
                continue
            if state.locally_done():
                # Final responses (REJECT/INVALID to peers still waiting
                # on us) must go on the wire before this rank leaves.
                yield from self._flush_boundary_g()
                if not self.reliable:
                    break
                if agg.idle():
                    # Quiescent, every batch acked. Linger (still acking
                    # retransmissions) so peers can retire their pending
                    # tables; the clock starts no earlier than the last
                    # partition heal.
                    if self._quiet_until is None:
                        self._quiet_until = (
                            max(ctx.now, self._quiet_floor) + self._linger
                        )
                    if ctx.now >= self._quiet_until:
                        break
                    yield from ctx.probe_g(deadline=self._quiet_until)
                    continue
                # Unacked batches remain: wait for their acks or the
                # retransmission timer, whichever first.
                self._quiet_until = None
                yield from ctx.probe_g(deadline=agg.next_deadline())
                continue
            self._quiet_until = None
            # Out of local work. If messages are staged, linger one timer
            # period first: in-flight traffic that lands within it gets
            # coalesced into the same batches (and resets the timer).
            if (
                self.flush_delay is not None
                and not self._lingered
                and agg.pending_messages() > 0
            ):
                self._lingered = True
                yield from ctx.probe_g(deadline=ctx.now + self.flush_delay)
                continue
            # Timer expired (or nothing staged): ship everything — nothing
            # may stay buffered while peers wait on us — then fast-forward
            # to the next arrival (bounded by the retransmission timer in
            # reliable mode; next_deadline() is None otherwise).
            yield from self._flush_boundary_g()
            self._lingered = False
            yield from ctx.probe_g(deadline=agg.next_deadline())
        return {"iterations": self._iterations}

    # ------------------------------------------------------------------
    # checkpoint capture/restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Backend loop/transport state for a coordinated checkpoint."""
        return {
            "iterations": self._iterations,
            "lingered": self._lingered,
            "quiet_until": self._quiet_until,
            "staged_bytes": self._staged_bytes,
            "agg": self.agg.snapshot(),
        }

    def restore_checkpoint(self, blob: dict) -> None:
        """Adopt a snapshot; the next :meth:`run` resumes mid-loop."""
        self._iterations = blob["iterations"]
        self._lingered = blob["lingered"]
        self._quiet_until = blob["quiet_until"]
        self._staged_bytes = blob["staged_bytes"]
        self.agg.restore(blob["agg"])
        self._resumed = True

    def finalize(self, state: MatchingState) -> None:
        self.ctx.free(self._fixed_bytes, "p2p-tables")
