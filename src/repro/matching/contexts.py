"""Communication contexts for distributed matching (paper Fig. 3).

A message is the triple ``(context, x, y)``: ``x`` is a vertex owned by
the *receiver*, ``y`` the vertex owned by the sender that the message is
about.

* ``REQUEST`` — "y points at x" (a matching proposal). Mutual pointing
  means a match, detected independently on both sides.
* ``REJECT``  — "y is matched to someone else; deactivate the edge".
* ``INVALID`` — "y can never be matched; deactivate the edge".
* ``ACK``     — MatchBox-P-style per-message acknowledgment (only the MBP
  baseline emits these; carries no algorithmic content).

For Send-Recv the context travels in the MPI tag; for RMA and
neighborhood collectives it is the first word of the 3-word payload —
exactly the paper's encoding split (§IV-B).
"""

from __future__ import annotations

from enum import IntEnum


class Ctx(IntEnum):
    REQUEST = 1
    REJECT = 2
    INVALID = 3
    ACK = 4


#: wire size of one (context, x, y) triple: three 64-bit words
TRIPLE_BYTES = 24
