"""Per-rank state machine for distributed half-approximate matching.

Implements the paper's Algorithms 3-6 (FINDMATE, PROCESSNEIGHBORS,
PROCESSINCOMINGDATA) over an abstract ``push`` callable so the identical
algorithm runs over every communication backend (paper Table I).

Protocol notes (documented deviation)
-------------------------------------
The paper's Algorithm 6 as printed rejects an incoming REQUEST whenever
the receiver's current pointer is elsewhere, even if the receiver is
still unmatched. That eager rejection can discard an edge both endpoints
would later agree on, losing the locally-dominant guarantee on adversarial
interleavings. We implement the Manne-Bisseling *deferred proposal*
semantics instead — an unmatched receiver parks the proposal and matches
when its own pointer arrives at the proposer — which computes exactly the
(unique, with distinct weights) greedy matching on every backend and
every timing. The eager variant is available as ``eager_reject=True`` and
is exercised by an ablation benchmark.

Message budget: each cross edge generates at most one message per
direction (REQUEST, REJECT, or INVALID), so per-neighbor buffers sized at
2x the shared ghost count — the paper's bound — are always sufficient.

Termination: ``nghosts`` counts still-active cross pairs; ``awaiting``
counts outstanding REQUESTs not yet resolved by a crossing REQUEST,
REJECT, or INVALID. A rank is locally quiescent when both are zero and
its work queue is empty; Send-Recv exits on that local predicate (paper
§V-D), while RMA/NCL combine it through a global reduction each
iteration, exactly as the paper describes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Callable

import numpy as np

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import Ctx
from repro.mpisim.engine import run_inline
from repro.util.hashing import edge_hash_array

NO_MATE = -1

# vertex status
FREE = 0
MATCHED = 1
DEAD = 2  # no available neighbor can remain (broadcast INVALID)

# abstract work-unit prices for the compute model
COST_SCAN = 1.0  #: examining one candidate slot
COST_MSG = 4.0  #: decoding + dispatching one incoming message
COST_PUSH = 2.0  #: staging one outgoing message
COST_NEIGHBOR = 1.5  #: one neighbor step in PROCESSNEIGHBORS

PushFn = Callable[[Ctx, int, int, int], None]


@dataclass
class MatchStats:
    """Algorithm-level statistics for one rank."""

    sent: dict[str, int] = field(default_factory=lambda: {c.name: 0 for c in Ctx})
    received: dict[str, int] = field(default_factory=lambda: {c.name: 0 for c in Ctx})
    matched_local: int = 0  #: matches with both endpoints owned
    matched_remote: int = 0  #: matches across a partition boundary
    findmate_calls: int = 0
    work_units: float = 0.0
    widowed: int = 0  #: remote matches annulled because the mate's rank crashed
    renounced_pairs: int = 0  #: cross pairs abandoned due to rank crashes


class MatchingState:
    """All rank-local data and transitions of the matching algorithm."""

    def __init__(
        self,
        lg: LocalGraph,
        push: PushFn,
        charge: Callable[[float], None],
        *,
        eager_reject: bool = False,
        handle_scale: float = 1.0,
        tie_break: str = "hash",
        push_fast: Callable[[Ctx, int, int, int], bool] | None = None,
    ):
        self.lg = lg
        self.push_fn = push
        # Vector-engine fused push: a plain callable returning True when
        # it sent (bit-identically to push_fn), False when the caller
        # must drive push_fn instead. None on backends without one.
        self.push_fast = push_fast
        self.charge = charge
        self.eager_reject = eager_reject
        # Per-message application-side dispatch cost multiplier. Backends
        # that process messages one at a time (NSR, MBP) pay cache-cold
        # branchy handling per message; batch backends (RMA, NCL) decode
        # contiguous buffers. This is the application-code counterpart of
        # the aggregation benefit and is what pushes the paper's Table VIII
        # "Comp.%" up for NSR.
        self.handle_scale = handle_scale
        self.stats = MatchStats()

        n_local = lg.num_owned
        self.status = np.full(n_local, FREE, dtype=np.int8)
        self.mate = np.full(n_local, NO_MATE, dtype=np.int64)
        self.pointer = np.full(n_local, NO_MATE, dtype=np.int64)
        self.ptr_idx = np.zeros(n_local, dtype=np.int64)  # scan position
        self.evicted: list[set[int]] = [set() for _ in range(n_local)]
        self.pending: list[set[int]] = [set() for _ in range(n_local)]
        self.processed = np.zeros(n_local, dtype=bool)  # PROCESSNEIGHBORS ran

        # Candidate order: per owned vertex, neighbors sorted descending by
        # the total order (weight, edge_hash) — the paper's hash tie-break.
        # ``tie_break="id"`` reproduces the naive vertex-id scheme whose
        # pathological serialization on uniform-weight paths/grids the
        # paper warns about (§III); it exists for the ablation study only.
        src_local = np.repeat(
            np.arange(n_local, dtype=np.int64), np.diff(lg.xadj)
        )
        if tie_break == "hash":
            keys = edge_hash_array(src_local + lg.lo, lg.adjncy)
        elif tie_break == "id":
            keys = lg.adjncy.astype(np.uint64)
        else:
            raise ValueError(f"unknown tie_break {tie_break!r}")
        # One global lexsort instead of a per-vertex sort loop. The
        # per-vertex order was lexsort((keys, w))[::-1]: descending
        # (weight, key), full ties in descending slot order (the reversal
        # of a stable ascending sort). Globally: primary src ascending
        # keeps each CSR segment contiguous; -w / ~keys ascending are w /
        # keys descending exactly (float negation and uint64 bitwise NOT
        # are order-reversing bijections); -arange ascending is slot
        # descending for full ties.
        n_slots = len(lg.adjncy)
        if n_slots:
            perm = np.lexsort((
                -np.arange(n_slots), np.invert(keys), -lg.weights, src_local,
            ))
            sorted_adj = lg.adjncy[perm]
        else:
            sorted_adj = lg.adjncy
        xadj = lg.xadj
        self.cand: list[np.ndarray] = [
            sorted_adj[int(xadj[i]):int(xadj[i + 1])] for i in range(n_local)
        ]

        # Cross-pair activity: (local_idx, ghost_global) -> active?
        # The ownership test is vectorized, but the adds stay one by one
        # in candidate order: later code iterates this set (and builds
        # ghosts_of from it), and CPython set iteration order depends on
        # the exact insertion history, which the differential fingerprint
        # tests pin across engines.
        ghost_idx = np.nonzero((sorted_adj < lg.lo) | (sorted_adj >= lg.hi))[0]
        self.active_pairs: set[tuple[int, int]] = set()
        _add_pair = self.active_pairs.add
        for i, y in zip(src_local[ghost_idx].tolist(),
                        sorted_adj[ghost_idx].tolist()):
            _add_pair((i, y))
        self.nghosts = len(self.active_pairs)
        self.awaiting = 0
        self.dead_ranks: set[int] = set()  # crashed peers we have renounced
        self.work: deque[int] = deque()  # local indices awaiting PROCESSNEIGHBORS
        # Ghost neighbors per owned vertex, for broadcast-style walks.
        self.ghosts_of: list[list[int]] = [[] for _ in range(n_local)]
        for (i, y) in self.active_pairs:
            self.ghosts_of[i].append(y)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _li(self, v: int) -> int:
        return v - self.lg.lo

    def _push(self, ctx_id: Ctx, y: int, x_payload: int, y_payload: int) -> None:
        """Send (ctx, x, y) to owner(y)."""
        run_inline(self._push_g(ctx_id, y, x_payload, y_payload))

    def _push_g(self, ctx_id: Ctx, y: int, x_payload: int, y_payload: int):
        self.charge(COST_PUSH)
        self.stats.sent[ctx_id.name] += 1
        pf = self.push_fast
        if pf is not None and pf(ctx_id, self.lg.dist.owner(y),
                                 x_payload, y_payload):
            return
        # Backends hand in either a plain callable (threaded engine) or a
        # generator function (coroutine engine) — drive whichever we got.
        res = self.push_fn(ctx_id, self.lg.dist.owner(y), x_payload, y_payload)
        if isinstance(res, GeneratorType):
            yield from res

    def _deactivate(self, i: int, y: int) -> bool:
        """Deactivate cross pair (local i, ghost y); True if it was active."""
        pair = (i, y)
        if pair in self.active_pairs:
            self.active_pairs.remove(pair)
            self.nghosts -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # FINDMATE (paper Algorithm 4, deferred-proposal variant)
    # ------------------------------------------------------------------
    def find_mate(self, v: int) -> None:
        """Point owned vertex ``v`` at its best available neighbor."""
        run_inline(self.find_mate_g(v))

    def find_mate_g(self, v: int):
        lg = self.lg
        i = self._li(v)
        if self.status[i] != FREE:
            return
        self.stats.findmate_calls += 1
        cand = self.cand[i]
        scanned = 0
        y = NO_MATE
        while self.ptr_idx[i] < len(cand):
            c = int(cand[self.ptr_idx[i]])
            scanned += 1
            if lg.owns(c):
                if self.status[self._li(c)] == FREE:
                    y = c
                    break
            else:
                if c not in self.evicted[i]:
                    y = c
                    break
            self.ptr_idx[i] += 1
        self.charge(COST_SCAN * max(1, scanned))

        if y == NO_MATE:
            yield from self._invalidate_g(v)
            return

        self.pointer[i] = y
        if lg.owns(y):
            j = self._li(y)
            if self.pointer[j] == v:
                self._match_local(v, y)
        else:
            # Commit to the ghost: deactivate the pair, evict it from the
            # candidate set (a later REJECT must not re-propose it), send
            # the proposal.
            self._deactivate(i, y)
            self.evicted[i].add(y)
            self.ptr_idx[i] += 1  # never reconsider y
            if y in self.pending[i]:
                # y proposed first: mutual pointing, match immediately;
                # the REQUEST we send lets y's owner detect the same.
                yield from self._push_g(Ctx.REQUEST, y, y, v)
                self._match_remote(v, y)
            else:
                yield from self._push_g(Ctx.REQUEST, y, y, v)
                self.awaiting += 1

    def _invalidate(self, v: int) -> None:
        """No candidate remains for ``v``: broadcast INVALID (case #5)."""
        run_inline(self._invalidate_g(v))

    def _invalidate_g(self, v: int):
        i = self._li(v)
        assert not self.pending[i], "dead vertex cannot hold proposals"
        self.status[i] = DEAD
        self.pointer[i] = NO_MATE
        for y in self.ghosts_of[i]:
            if self._deactivate(i, y):
                yield from self._push_g(Ctx.INVALID, y, y, v)

    # ------------------------------------------------------------------
    # matches
    # ------------------------------------------------------------------
    def _match_local(self, x: int, y: int) -> None:
        ix, iy = self._li(x), self._li(y)
        self.status[ix] = self.status[iy] = MATCHED
        self.mate[ix] = y
        self.mate[iy] = x
        self.pending[ix].clear()
        self.pending[iy].clear()
        self.stats.matched_local += 1
        self.work.append(ix)
        self.work.append(iy)

    def _match_remote(self, x: int, y_ghost: int) -> None:
        ix = self._li(x)
        self.status[ix] = MATCHED
        self.mate[ix] = y_ghost
        self.pending[ix].clear()
        self.stats.matched_remote += 1
        self.work.append(ix)

    # ------------------------------------------------------------------
    # PROCESSNEIGHBORS (paper Algorithm 5)
    # ------------------------------------------------------------------
    def process_neighbors(self, i: int) -> None:
        """Resolve the neighborhood of newly matched owned vertex (idx i)."""
        run_inline(self.process_neighbors_g(i))

    def process_neighbors_g(self, i: int):
        if self.processed[i]:
            return
        self.processed[i] = True
        lg = self.lg
        v = lg.lo + i
        mate_v = int(self.mate[i])
        nbrs, _ = lg.row(v)
        self.charge(COST_NEIGHBOR * max(1, len(nbrs)))
        for u in nbrs:
            u = int(u)
            if u == mate_v:
                continue
            if lg.owns(u):
                j = self._li(u)
                if self.status[j] == FREE and self.pointer[j] == v:
                    yield from self.find_mate_g(u)
            else:
                if self._deactivate(i, u):
                    yield from self._push_g(Ctx.REJECT, u, u, v)

    def drain_work(self) -> int:
        """Run PROCESSNEIGHBORS for every queued matched vertex."""
        return run_inline(self.drain_work_g())

    def drain_work_g(self):
        done = 0
        while self.work:
            yield from self.process_neighbors_g(self.work.popleft())
            done += 1
        return done

    # ------------------------------------------------------------------
    # PROCESSINCOMINGDATA (paper Algorithm 6, deferred variant)
    # ------------------------------------------------------------------
    def handle(self, ctx_id: Ctx, x: int, y: int) -> None:
        """Process one incoming (ctx, x, y): x is ours, y is the sender's."""
        run_inline(self.handle_g(ctx_id, x, y))

    def handle_g(self, ctx_id: Ctx, x: int, y: int):
        self.charge(COST_MSG * self.handle_scale)
        self.stats.received[Ctx(ctx_id).name] += 1
        lg = self.lg
        if not lg.owns(x):
            raise ValueError(f"rank {lg.rank} received message for foreign vertex {x}")
        if self.dead_ranks and lg.dist.owner(y) in self.dead_ranks:
            # Late message from a peer we have since renounced: its pairs
            # are already deactivated/evicted, so every branch below would
            # be a no-op — except REQUEST, which would park a proposal
            # from a ghost that can never confirm. Drop it outright.
            return
        i = self._li(x)

        if ctx_id == Ctx.REQUEST:
            if self.status[i] == FREE and self.pointer[i] == y and not lg.owns(y):
                # Mutual pointing: our own REQUEST to y is in flight or
                # delivered; this crossing REQUEST resolves it.
                self.awaiting -= 1
                self._match_remote(x, y)
            elif self.status[i] == FREE:
                if self.eager_reject:
                    # Paper Algorithm 6 as printed: refuse proposals that do
                    # not match the current pointer, even while unmatched.
                    if self._deactivate(i, y):
                        self.evicted[i].add(y)
                        yield from self._push_g(Ctx.REJECT, y, y, x)
                else:
                    self.pending[i].add(y)  # deferred proposal
            else:
                # Already matched elsewhere or dead: refuse, unless this
                # pair was already deactivated (our REJECT/INVALID is in
                # flight to the proposer).
                if self._deactivate(i, y):
                    yield from self._push_g(Ctx.REJECT, y, y, x)
        elif ctx_id == Ctx.REJECT:
            yield from self._resolution_g(i, x, y)
        elif ctx_id == Ctx.INVALID:
            yield from self._resolution_g(i, x, y)
        elif ctx_id == Ctx.ACK:
            pass  # MBP baseline chatter; no algorithmic content
        else:  # pragma: no cover
            raise ValueError(f"unknown context {ctx_id}")

    def _resolution(self, i: int, x: int, y: int) -> None:
        run_inline(self._resolution_g(i, x, y))

    def _resolution_g(self, i: int, x: int, y: int):
        """Shared REJECT/INVALID handling.

        Exactly one of three cases:

        * we have an outstanding REQUEST to ``y`` (x free, pointer at y) —
          this message resolves it; retarget x;
        * the pair is still active — unsolicited deactivation; evict y;
        * neither — both sides deactivated concurrently and their
          REJECT/INVALIDs crossed on the wire; nothing to do.
        """
        if self.status[i] == FREE and self.pointer[i] == y:
            # A request to a ghost always deactivates the pair first, so
            # pointer[i] == y (a ghost) implies an outstanding request.
            self.awaiting -= 1
            self.pointer[i] = NO_MATE
            yield from self.find_mate_g(x)
        elif self._deactivate(i, y):
            self.evicted[i].add(y)

    # ------------------------------------------------------------------
    # fault tolerance (ULFM-style graceful degradation)
    # ------------------------------------------------------------------
    def renounce_rank(self, dead: int) -> int:
        """Abandon every cross interaction with crashed rank ``dead``.

        Mirrors what a ULFM ``MPI_Comm_shrink`` recovery path would do:
        the survivors give up all edges into the failed rank and continue
        matching on the surviving subgraph. Concretely:

        * every still-active cross pair into ``dead`` is deactivated and
          evicted (no proposal will ever be sent or answered);
        * parked proposals from dead-owned ghosts are dropped;
        * an outstanding REQUEST into ``dead`` is resolved as if a REJECT
          had arrived (the vertex retargets via FINDMATE);
        * a remote match whose mate lives on ``dead`` is annulled — the
          vertex stays out of the protocol ("widowed": its neighborhood
          was already processed and REJECTs broadcast).

        Idempotent per rank; returns the number of affected pairs/vertices.
        """
        return run_inline(self.renounce_rank_g(dead))

    def renounce_rank_g(self, dead: int):
        lg = self.lg
        if dead in self.dead_ranks:
            return 0
        self.dead_ranks.add(dead)
        owner = lg.dist.owner

        doomed = [(i, y) for (i, y) in self.active_pairs if owner(y) == dead]
        for i, y in doomed:
            self._deactivate(i, y)
            self.evicted[i].add(y)
        self.stats.renounced_pairs += len(doomed)

        retarget: list[int] = []
        for i in range(lg.num_owned):
            if self.pending[i]:
                stale = {y for y in self.pending[i] if owner(y) == dead}
                self.pending[i] -= stale
            st = int(self.status[i])
            if st == FREE:
                p = int(self.pointer[i])
                if p != NO_MATE and not lg.owns(p) and owner(p) == dead:
                    # Outstanding REQUEST into the void: resolve it the
                    # way a REJECT would have (p is already evicted —
                    # proposing deactivates and evicts the pair).
                    self.awaiting -= 1
                    self.pointer[i] = NO_MATE
                    retarget.append(lg.lo + i)
            elif st == MATCHED:
                m = int(self.mate[i])
                if m != NO_MATE and not lg.owns(m) and owner(m) == dead:
                    self.mate[i] = NO_MATE
                    self.stats.widowed += 1
        for v in retarget:
            yield from self.find_mate_g(v)
        return len(doomed) + len(retarget)

    # ------------------------------------------------------------------
    # checkpoint capture/restore
    # ------------------------------------------------------------------
    #: every field the protocol mutates after construction; the candidate
    #: order (``cand``), ghost lists, and graph itself are pure functions
    #: of the input partition and are rebuilt by ``__init__`` on resume.
    _SNAPSHOT_FIELDS = (
        "stats",
        "status",
        "mate",
        "pointer",
        "ptr_idx",
        "evicted",
        "pending",
        "processed",
        "active_pairs",
        "nghosts",
        "awaiting",
        "dead_ranks",
        "work",
    )

    def snapshot(self) -> dict:
        """Mutable protocol state for a coordinated checkpoint.

        Returns live references — the engine pickles the tree immediately
        at the capture instant, which both isolates it from further
        mutation and keeps the copy cost off the simulated clock.
        """
        return {f: getattr(self, f) for f in self._SNAPSHOT_FIELDS}

    def restore(self, blob: dict) -> None:
        """Adopt a snapshot taken by :meth:`snapshot` (resume path).

        The blob arrives freshly unpickled, so adopting the objects
        directly cannot alias another run's state.
        """
        for f in self._SNAPSHOT_FIELDS:
            setattr(self, f, blob[f])

    # ------------------------------------------------------------------
    # phases / termination
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Phase 1: initial FINDMATE sweep over owned vertices."""
        run_inline(self.start_g())

    def start_g(self):
        for v in range(self.lg.lo, self.lg.hi):
            yield from self.find_mate_g(v)

    def remaining(self) -> int:
        """Local progress debt; globally zero means the algorithm is done."""
        return self.nghosts + self.awaiting + len(self.work)

    def locally_done(self) -> bool:
        return self.remaining() == 0

    def mate_global(self) -> np.ndarray:
        """Owned slice of the global mate array."""
        return self.mate.copy()
