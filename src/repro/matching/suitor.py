"""Serial Suitor matching (Manne & Halappanavar, IPDPS 2014).

A third independent half-approximate matching algorithm: each vertex
proposes to the best neighbor that does not already hold a better
proposal; displaced suitors immediately re-propose. With a strict total
order on edge weights the result is the same unique locally-dominant
matching as greedy and pointer-based algorithms — a genuinely different
code path computing the same object, which is exactly what a test oracle
family wants.

(The paper's group later built distributed matching on Suitor; here the
serial version serves as an extra reference implementation.)
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.matching.serial import NO_MATE, MatchingResult
from repro.util.hashing import edge_hash_array


def suitor_matching(g: CSRGraph) -> MatchingResult:
    """Suitor algorithm; returns the unique locally-dominant matching."""
    n = g.num_vertices
    xadj, adj, w = g.xadj, g.adjncy, g.weights
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj))
    keys = edge_hash_array(src, adj)

    # suitor[v] = current best proposer to v; ws[v] = its (weight, key)
    suitor = np.full(n, NO_MATE, dtype=np.int64)
    best_offer: list[tuple[float, int] | None] = [None] * n

    def offer_key(slot: int) -> tuple[float, int]:
        return (float(w[slot]), int(keys[slot]))

    for start in range(n):
        u = start
        while u != NO_MATE:
            # u proposes to its best neighbor that would accept.
            best_v = NO_MATE
            best_k: tuple[float, int] | None = None
            best_slot = -1
            for slot in range(int(xadj[u]), int(xadj[u + 1])):
                v = int(adj[slot])
                k = offer_key(slot)
                cur = best_offer[v]
                if cur is not None and cur >= k:
                    continue  # v already holds a better (or equal) offer
                if best_k is None or k > best_k:
                    best_k = k
                    best_v = v
                    best_slot = slot
            if best_v == NO_MATE:
                break  # u stays unmatched (for now — maybe forever)
            displaced = int(suitor[best_v])
            suitor[best_v] = u
            best_offer[best_v] = offer_key(best_slot)
            u = displaced  # the displaced suitor re-proposes

    # mutual suitorship == matching
    mate = np.full(n, NO_MATE, dtype=np.int64)
    weight = 0.0
    for v in range(n):
        u = int(suitor[v])
        if u != NO_MATE and int(suitor[u]) == v and v < u:
            mate[v] = u
            mate[u] = v
            weight += g.edge_weight(v, u)
    return MatchingResult(mate=mate, weight=weight)
