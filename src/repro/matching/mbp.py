"""MBP — a MatchBox-P-style Send-Recv baseline (paper §V, "MBP").

MatchBox-P (Catalyurek et al., 2011) predates this paper's tuned NSR
code. The paper uses it as a reference implementation and reports it
1.2-2x slower than their NSR on large graphs, and 2.5-7x slower than
NCL/RMA. The structural differences we model, all of which are documented
properties of the older queue-based design:

* **per-message acknowledgments** — every REQUEST is answered with an
  explicit ACK message even when no decision rides on it (the old
  protocol's bookkeeping), roughly doubling small-message traffic;
* **heavier per-message software path** — extra queue management and
  O(degree) bookkeeping charged per message;
* **O(p) state** — arrays sized by the full communicator, not by the
  topology neighborhood (memory model);
* **global termination rounds** — the old code established quiescence
  with communicator-wide reductions instead of the local exit rule.
"""

from __future__ import annotations

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.state import MatchingState
from repro.mpisim.context import RankContext
from repro.mpisim.engine import run_inline

#: extra abstract work units per message event (queue churn in the old code)
_MBP_EXTRA_WORK = 6.0


class MBPBackend:
    """Older-generation Send-Recv with acknowledgments and global rounds."""

    name = "mbp"
    handle_scale = 20.0  #: even heavier per-message path than tuned NSR

    def __init__(self, ctx: RankContext, lg: LocalGraph, options=None):
        self.options = options
        self.ctx = ctx
        self.lg = lg
        # O(p) bookkeeping arrays plus eager pools for every rank (the
        # old code opened channels communicator-wide).
        self._fixed_bytes = (96 + ctx.machine.eager_pool_per_peer_bytes // 2) * ctx.nprocs
        self.ctx.alloc(self._fixed_bytes, "mbp-tables")

    # ------------------------------------------------------------------
    def push(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> None:
        run_inline(self.push_g(ctx_id, target_rank, x, y))

    def push_g(self, ctx_id: Ctx, target_rank: int, x: int, y: int):
        self.ctx.compute(_MBP_EXTRA_WORK)
        yield from self.ctx.isend_g(target_rank, (x, y), tag=int(ctx_id),
                                    nbytes=TRIPLE_BYTES)

    def _drain_incoming_g(self, state: MatchingState):
        ctx = self.ctx
        handled = 0
        while True:
            hdr = yield from ctx.iprobe_g()
            if hdr is None:
                return handled
            src, tag, _ = hdr
            msg = yield from ctx.recv_g(source=src, tag=tag)
            x, y = msg.payload
            ctx.compute(_MBP_EXTRA_WORK)
            yield from state.handle_g(Ctx(tag), x, y)
            if tag == int(Ctx.REQUEST):
                # Protocol acknowledgment: pure overhead traffic.
                yield from ctx.isend_g(src, (y, x), tag=int(Ctx.ACK),
                                       nbytes=TRIPLE_BYTES)
            handled += 1

    # ------------------------------------------------------------------
    def run(self, state: MatchingState) -> dict:
        return run_inline(self.run_g(state))

    def run_g(self, state: MatchingState):
        """Globally synchronized rounds: drain, work, then a communicator-
        wide termination reduction every round (the old code's quiescence
        scheme). Every rank executes the same collective sequence, so the
        reductions stay aligned; leftover ACKs in flight at exit carry no
        algorithmic content."""
        yield from state.start_g()
        iterations = 0
        while True:
            iterations += 1
            yield from self._drain_incoming_g(state)
            yield from state.drain_work_g()
            done = yield from self.ctx.allreduce_g(state.remaining())
            if done == 0:
                break
        return {"iterations": iterations}

    def finalize(self, state: MatchingState) -> None:
        self.ctx.free(self._fixed_bytes, "mbp-tables")
