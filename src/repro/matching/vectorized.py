"""Vectorized serial locally-dominant matching (numpy, no Python loops
over vertices).

Same algorithm and same unique result as
:func:`repro.matching.serial.locally_dominant_matching`, but each pointer
round is a whole-graph numpy computation: per-vertex argmax over available
neighbors via ``np.maximum.reduceat`` over the CSR segments, mutual-pointer
detection, and vectorized deactivation. Rounds repeat until no pointer
changes produce new matches.

The argmax is an *exact* (weight, hash) lexicographic reduction done in
two reduceat stages: first the per-segment weight maximum, then the hash
maximum restricted to the slots that attain it. This matches the
loop-based reference's ``(float(w), int(hash))`` tuple comparison bit for
bit, including on adversarial all-equal-weight inputs where a single
float key would collapse the tie-break (for weights >~1e4 a 1e-12
perturbation falls below one ulp and distinct edges compare equal,
breaking the total order the algorithm's termination proof needs).

Used as the fast oracle for large instances (the loop-based reference is
kept for readability and as an independent implementation to test
against).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.matching.serial import NO_MATE, MatchingResult
from repro.util.hashing import edge_hash_array


def _slot_hashes(g: CSRGraph) -> np.ndarray:
    """Tie-break hash per directed CSR slot (same value for both ends)."""
    n = g.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.xadj))
    return edge_hash_array(src, g.adjncy)


def _segment_max(values: np.ndarray, starts: np.ndarray, nonempty: np.ndarray,
                 n: int, fill) -> np.ndarray:
    """Per-CSR-segment maximum with explicit empty-segment handling.

    ``np.maximum.reduceat`` is only called on the starts of *nonempty*
    segments: for an empty segment ``indices[i] == indices[i+1]`` and
    reduceat returns ``values[indices[i]]`` — the first slot of the next
    segment — and a trailing empty segment's start index is
    ``len(values)``, out of bounds. Empty segments (and the no-edges /
    single-vertex cases, where ``starts`` itself is empty) get ``fill``.
    """
    out = np.full(n, fill, dtype=values.dtype)
    if starts.size:
        out[nonempty] = np.maximum.reduceat(values, starts)
    return out


def locally_dominant_matching_vec(g: CSRGraph) -> MatchingResult:
    """Whole-graph vectorized locally-dominant matching."""
    n = g.num_vertices
    if n == 0:
        return MatchingResult(mate=np.empty(0, dtype=np.int64), weight=0.0)
    xadj = g.xadj
    adj = g.adjncy
    hashes = _slot_hashes(g)
    degrees = np.diff(xadj)
    nonempty = degrees > 0
    ne_starts = xadj[:-1][nonempty]

    mate = np.full(n, NO_MATE, dtype=np.int64)
    available = np.ones(n, dtype=bool)  # unmatched and not dead
    available[~nonempty] = False  # isolated vertices can never match
    slot_alive = np.ones(len(adj), dtype=bool)

    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rounds = 0
    weight = 0.0
    neg_inf = -np.inf

    while True:
        rounds += 1
        active = available & nonempty
        if not np.any(active):
            break
        # Mask dead slots (neighbors that are matched or dead).
        slot_alive &= available[adj]
        masked_w = np.where(slot_alive, g.weights, neg_inf)
        # Stage 1: per-vertex weight max over its CSR segment.
        seg_max_w = _segment_max(masked_w, ne_starts, nonempty, n, neg_inf)
        # A vertex with all-dead neighborhood becomes dead.
        newly_dead = active & (seg_max_w == neg_inf)
        if np.any(newly_dead):
            available[newly_dead] = False

        active = available & nonempty & (seg_max_w > neg_inf)
        if not np.any(active):
            break
        # Stage 2: among the live slots attaining the weight max, the
        # hash max — together an exact (weight, hash) lexicographic
        # argmax, identical to the reference's tuple comparison.
        is_wmax = slot_alive & (masked_w == seg_max_w[src])
        masked_h = np.where(is_wmax, hashes, 0)
        seg_max_h = _segment_max(masked_h, ne_starts, nonempty, n, 0)
        is_max = is_wmax & (masked_h == seg_max_h[src])
        # First max slot per vertex: descending fancy-index assignment so
        # the lowest slot (first occurrence) wins, as in the reference.
        slot_idx = np.full(n, -1, dtype=np.int64)
        order = np.arange(len(adj) - 1, -1, -1)
        cand_slots = order[is_max[order]]
        slot_idx[src[cand_slots]] = cand_slots
        pointer = np.full(n, NO_MATE, dtype=np.int64)
        pointer[active] = adj[slot_idx[active]]

        # Mutual pointers -> matches.
        p = pointer
        mutual = active & (p >= 0) & (p[np.clip(p, 0, n - 1)] == np.arange(n))
        if not np.any(mutual):
            # no new matches and no new deaths means a fixed point
            if not np.any(newly_dead):
                break
            continue
        vs = np.nonzero(mutual)[0]
        lo_side = vs[vs < p[vs]]  # count each pair once
        for v in lo_side:
            u = int(p[v])
            mate[v] = u
            mate[u] = v
            weight += float(g.weights[slot_idx[v]])
        available[vs] = False

    return MatchingResult(mate=mate, weight=weight, rounds=rounds)
