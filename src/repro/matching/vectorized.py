"""Vectorized serial locally-dominant matching (numpy, no Python loops
over vertices).

Same algorithm and same unique result as
:func:`repro.matching.serial.locally_dominant_matching`, but each pointer
round is a whole-graph numpy computation: per-vertex argmax over available
neighbors via ``np.maximum.reduceat`` on a packed (weight, tie-hash) key,
mutual-pointer detection, and vectorized deactivation. Rounds repeat until
no pointer changes produce new matches.

Used as the fast oracle for large instances (the loop-based reference is
kept for readability and as an independent implementation to test
against).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.matching.serial import NO_MATE, MatchingResult
from repro.util.hashing import edge_hash_array


def _composite_keys(g: CSRGraph) -> np.ndarray:
    """Strictly ordered float keys per CSR slot: weight + tiny hash tie-break.

    The hash component is scaled far below the weight jitter that the
    generators inject, so ordering by this single float array equals
    ordering by the (weight, hash) tuple for all practically occurring
    weights; exact correctness for adversarial ties is covered by the
    loop-based reference implementation.
    """
    n = g.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.xadj))
    h = edge_hash_array(src, g.adjncy).astype(np.float64)
    # weights are > 1e-3 in our generators; hash perturbation ~1e-15 scale
    return g.weights + (h / 2**64) * 1e-12


def locally_dominant_matching_vec(g: CSRGraph) -> MatchingResult:
    """Whole-graph vectorized locally-dominant matching."""
    n = g.num_vertices
    if n == 0:
        return MatchingResult(mate=np.empty(0, dtype=np.int64), weight=0.0)
    xadj = g.xadj
    adj = g.adjncy
    keys = _composite_keys(g)
    degrees = np.diff(xadj)
    nonempty = degrees > 0

    mate = np.full(n, NO_MATE, dtype=np.int64)
    available = np.ones(n, dtype=bool)  # unmatched and not dead
    available[~nonempty] = False  # isolated vertices can never match
    slot_alive = np.ones(len(adj), dtype=bool)

    # reduceat needs nonempty segments; guard via masking below.
    starts = xadj[:-1].copy()
    rounds = 0
    weight = 0.0
    neg_inf = -np.inf

    while True:
        rounds += 1
        active = available & nonempty
        if not np.any(active):
            break
        # Mask dead slots (neighbors that are matched or dead).
        slot_alive &= available[adj]
        masked = np.where(slot_alive, keys, neg_inf)
        # Per-vertex max over its CSR segment.
        seg_max = np.full(n, neg_inf)
        seg_max[nonempty] = np.maximum.reduceat(masked, starts[nonempty])[
            : int(nonempty.sum())
        ]
        # A vertex with all-dead neighborhood becomes dead.
        newly_dead = active & (seg_max == neg_inf)
        if np.any(newly_dead):
            available[newly_dead] = False

        active = available & nonempty & (seg_max > neg_inf)
        if not np.any(active):
            break
        # Pointer = position of the segment max (first occurrence).
        # Find it by comparing slot keys to the per-source max.
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        is_max = masked == seg_max[src]
        # first max slot per vertex:
        slot_idx = np.full(n, -1, dtype=np.int64)
        # reversed fill so the first occurrence wins
        order = np.arange(len(adj) - 1, -1, -1)
        cand_slots = order[is_max[order]]
        slot_idx[src[cand_slots]] = cand_slots
        pointer = np.full(n, NO_MATE, dtype=np.int64)
        pointer[active] = adj[slot_idx[active]]

        # Mutual pointers -> matches.
        p = pointer
        mutual = active & (p >= 0) & (p[np.clip(p, 0, n - 1)] == np.arange(n))
        if not np.any(mutual):
            # no new matches and no new deaths means a fixed point
            if not np.any(newly_dead):
                break
            continue
        vs = np.nonzero(mutual)[0]
        lo_side = vs[vs < p[vs]]  # count each pair once
        for v in lo_side:
            u = int(p[v])
            mate[v] = u
            mate[u] = v
            weight += float(g.weights[slot_idx[v]])
        available[vs] = False

    return MatchingResult(mate=mate, weight=weight, rounds=rounds)
