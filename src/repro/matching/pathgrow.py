"""Drake-Hougardy path-growing matching (the paper's ref [10]).

Grows node-disjoint paths by repeatedly following the heaviest incident
edge, alternately assigning edges to two candidate matchings, and keeps
the heavier of the two. Guaranteed half-approximate, linear time — but
unlike greedy / locally-dominant / suitor it does NOT produce the unique
locally-dominant matching, which makes it a useful *quality* comparator:
the algorithms agree on the guarantee, not on the edges.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.matching.serial import NO_MATE, MatchingResult
from repro.util.hashing import edge_hash_array


def path_growing_matching(g: CSRGraph) -> MatchingResult:
    """Drake-Hougardy PGA: max(weight(M1), weight(M2)) >= opt / 2."""
    n = g.num_vertices
    xadj, adj, w = g.xadj, g.adjncy, g.weights
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj))
    keys = edge_hash_array(src, adj)

    removed = np.zeros(n, dtype=bool)  # vertices consumed by path growth
    m_edges: list[list[tuple[int, int, float]]] = [[], []]

    for start in range(n):
        if removed[start]:
            continue
        x = start
        side = 0
        while True:
            # heaviest edge from x to a not-yet-removed neighbor
            best_slot = -1
            best_key: tuple[float, int] | None = None
            for slot in range(int(xadj[x]), int(xadj[x + 1])):
                y = int(adj[slot])
                if removed[y]:
                    continue
                k = (float(w[slot]), int(keys[slot]))
                if best_key is None or k > best_key:
                    best_key = k
                    best_slot = slot
            removed[x] = True
            if best_slot < 0:
                break
            y = int(adj[best_slot])
            m_edges[side].append((x, y, float(w[best_slot])))
            side ^= 1
            x = y

    # Each side is vertex-disjoint along every grown path but paths from
    # different starts never share vertices (removed[] guards), so both
    # sides are matchings; pick the heavier.
    def realize(edges) -> tuple[np.ndarray, float]:
        mate = np.full(n, NO_MATE, dtype=np.int64)
        total = 0.0
        for a, b, ww in edges:
            if mate[a] == NO_MATE and mate[b] == NO_MATE:
                mate[a] = b
                mate[b] = a
                total += ww
        return mate, total

    mate0, w0 = realize(m_edges[0])
    mate1, w1 = realize(m_edges[1])
    if w0 >= w1:
        return MatchingResult(mate=mate0, weight=w0)
    return MatchingResult(mate=mate1, weight=w1)
