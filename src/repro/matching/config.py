"""Run configuration for :func:`repro.matching.api.run_matching`.

One frozen dataclass replaces the historical kwarg sprawl
(``machine/options/dist/max_ops/faults/trace/profile/...``): build a
:class:`RunConfig` once, pass it everywhere, derive variants with
:meth:`RunConfig.evolve`. The old keyword arguments still work through a
``DeprecationWarning`` shim in ``run_matching`` and produce bit-identical
results (the shim only repackages the values).

>>> from repro.matching import RunConfig, run_matching
>>> cfg = RunConfig(machine=cori_aries(), profile=True)    # doctest: +SKIP
>>> res = run_matching(g, 16, "ncl", config=cfg)           # doctest: +SKIP
>>> res2 = run_matching(g, 16, "ncl", config=cfg.evolve(trace=True))  # doctest: +SKIP
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any

from repro.matching.driver import MatchingOptions
from repro.mpisim.checkpoint import CheckpointConfig, EngineSnapshot
from repro.mpisim.faults import FaultPlan
from repro.mpisim.machine import MachineModel


@dataclass(frozen=True)
class RunConfig:
    """Everything configurable about one matching run except the problem.

    The problem is ``(g, nprocs, model)`` — positional arguments of
    :func:`~repro.matching.api.run_matching`; this object is the rest.
    ``None`` fields mean "use the standard default" (``cori-aries``
    machine, default :class:`~repro.matching.driver.MatchingOptions`,
    1D block distribution, no budget, no faults).
    """

    machine: MachineModel | None = None  #: cost model; None = cori-aries
    options: MatchingOptions | None = None  #: algorithm/backend tunables
    dist: Any = None  #: vertex distribution override (e.g.
    #: :func:`repro.graph.distribution.edge_balanced_distribution`)
    max_ops: int | None = None  #: engine operation budget (overrides
    #: ``options.max_ops`` when set)
    faults: FaultPlan | None = None  #: deterministic fault plan
    trace: bool = False  #: record per-op trace events
    profile: bool = False  #: span profiler (docs/profiling.md)
    compute_weight: bool = True  #: weigh the matching (skip for timing
    #: sweeps that only need the makespan)
    scheduler: str = "heap"  #: engine scheduler ("heap" or "reference")
    engine: str = field(
        default_factory=lambda: os.environ.get("REPRO_ENGINE", "threaded")
    )  #: execution engine ("threaded", "coroutine", or "vector"); all
    #: bit-identical, coroutine scales to P>=4096 and vector (coroutine
    #: plus fused guard-checked fast paths) to P>=16384 (docs/
    #: engine_scheduling.md). Default comes from $REPRO_ENGINE so CI can
    #: run the whole suite under any engine without code changes.

    # -- checkpoint/restart (docs/fault_model.md) ---------------------
    checkpoint: CheckpointConfig | None = None  #: take coordinated
    #: checkpoints at the configured virtual-time interval
    kill_at: float | None = None  #: abort the run (``SimKilled``) once
    #: any rank's clock passes this virtual time — the chaos harness's
    #: crash-the-whole-job lever for restart testing
    restore: EngineSnapshot | None = None  #: resume from this snapshot
    #: instead of starting at virtual time 0 (bit-identical completion)

    # -- automatic rollback-recovery (docs/fault_model.md, "Recovery") -
    spares: int = 0  #: warm-standby rank budget; > 0 turns on automatic
    #: rollback-recovery (requires ``checkpoint``): each crash consumes
    #: one spare, which is substituted into the dead slot so P and the
    #: topology stay constant across recovery epochs
    replicas: int = 2  #: buddy-replication degree k for the diskless
    #: replicated checkpoint store (only meaningful with ``spares > 0``)

    def evolve(self, **changes) -> "RunConfig":
        """A copy with ``changes`` applied (frozen-dataclass ``replace``)."""
        return dataclasses.replace(self, **changes)
