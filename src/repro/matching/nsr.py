"""NSR — the baseline nonblocking Send-Recv backend (paper §IV-D(a)).

Table I mapping: Push = ``MPI_Isend`` (one message per event, no
aggregation), Evoke = ``MPI_Iprobe``, Process = ``MPI_Recv`` one message
at a time. The communication context rides in the message tag.

Termination is purely local (paper §V-D): a rank leaves the loop when its
``nghosts`` and ``awaiting`` counters reach zero; any still-in-flight
messages addressed to it are then algorithmically irrelevant (their
senders were already informed by this rank's final REJECT/INVALID).

Fault tolerance (extension; see docs/fault_model.md): when the engine
carries a :class:`~repro.mpisim.faults.FaultPlan`, this backend switches
to a hardened event loop. Message faults (drop/dup/delay) are masked by
the :class:`~repro.matching.reliable.ReliableChannel` ack/retry shim, so
the state machine still sees exactly-once in-order delivery and computes
the same matching as the fault-free run. Rank crashes are handled
ULFM-style: on detection the survivors renounce all cross edges into the
dead rank (``MatchingState.renounce_rank``) and finish the matching on
the surviving subgraph. The fault-free path is byte-identical to the
original backend.
"""

from __future__ import annotations

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.reliable import ReliableChannel
from repro.matching.state import MatchingState
from repro.mpisim.context import FUSED_FALLBACK, RankContext
from repro.mpisim.engine import run_inline
from repro.mpisim.message import Message


class NSRBackend:
    """One-message-per-event Send-Recv communication."""

    name = "nsr"
    handle_scale = 14.0  #: per-message (unbatched) application dispatch cost

    def __init__(self, ctx: RankContext, lg: LocalGraph, options=None):
        self.ctx = ctx
        self.lg = lg
        self.options = options
        # Per-peer request tables plus the eager-protocol buffer pool the
        # MPI layer pins for every point-to-point peer — memory model only.
        deg = max(1, len(lg.neighbor_ranks))
        self._fixed_bytes = (
            64 * deg + ctx.machine.eager_pool_per_peer_bytes * len(lg.neighbor_ranks)
        )
        if not ctx.resuming:
            # Resume: the restored counters already carry this allocation.
            self.ctx.alloc(self._fixed_bytes, "p2p-tables")

        plan = ctx.fault_plan
        self._plan = plan
        want_reliable = getattr(options, "reliable", None)
        if want_reliable is None:
            want_reliable = plan is not None and plan.needs_reliability()
        self.fault_aware = plan is not None and plan.has_crashes()
        # A quiescent rank must stay alive past the last partition heal:
        # a peer's retransmission deferred behind the cut cannot reach us
        # before then, so the linger clock starts no earlier than this.
        self._quiet_floor = (
            max((w.t_end for w in plan.partitions), default=0.0)
            if plan is not None
            else 0.0
        )
        self.channel: ReliableChannel | None = None
        if want_reliable:
            self.channel = ReliableChannel(
                ctx,
                rto=getattr(options, "rto", None),
                rto_max=getattr(options, "rto_max", None),
                max_retries=getattr(options, "max_retries", 25),
            )
            # Linger after quiescence: long enough that a peer's final
            # retransmission (worst-case backoff) plus its injected delay
            # still finds us alive to ack it.
            delay_max = plan.delay_max if plan is not None else 0.0
            self._linger = 3.0 * self.channel.rto_max + delay_max

        # Loop state lives on the instance so a checkpoint provider can
        # capture it while the rank is parked inside a probe.
        self._iterations = 0
        self._quiet_until: float | None = None
        self._resumed = False

    # ------------------------------------------------------------------
    def push(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> None:
        """Immediate nonblocking send; the context is the MPI tag."""
        run_inline(self.push_g(ctx_id, target_rank, x, y))

    def push_g(self, ctx_id: Ctx, target_rank: int, x: int, y: int):
        if self.channel is not None:
            yield from self.channel.send_g(
                target_rank, int(ctx_id), (x, y), TRIPLE_BYTES)
            return
        if self.fault_aware and self.ctx.is_failed(target_rank):
            # Detected-dead peer we have not renounced yet (detection can
            # land mid-iteration); the message would be blackholed anyway
            # and renounce_rank repairs the bookkeeping at the loop top.
            return
        yield from self.ctx.isend_g(target_rank, (x, y), tag=int(ctx_id),
                                    nbytes=TRIPLE_BYTES)

    def push_fast(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> bool:
        """Vector-engine fused push; False = caller must use :meth:`push_g`.

        Only the plain transport qualifies: the reliable channel and the
        crash-aware path have their own bookkeeping around every send.
        """
        if self.channel is not None or self.fault_aware:
            return False
        return self.ctx.isend_fast(
            target_rank, (x, y), tag=int(ctx_id), nbytes=TRIPLE_BYTES
        ) is not FUSED_FALLBACK

    def _drain_incoming_g(self, state: MatchingState):
        """Probe-and-receive until the queue is (momentarily) empty.

        The hot pair (Iprobe + Recv of one triple) goes through the
        vector engine's fused fast path when its guard allows, falling
        back — wholly or, after a charged probe, partially — to the
        generator primitives, which are the exact scalar sequence.
        """
        ctx = self.ctx
        handled = 0
        while True:
            out = ctx.try_probe_recv()
            if isinstance(out, Message):
                msg = out
            elif out is None:
                return handled
            elif out is FUSED_FALLBACK:
                hdr = yield from ctx.iprobe_g()
                if hdr is None:
                    return handled
                src, tag, _ = hdr
                msg = yield from ctx.recv_g(source=src, tag=tag)
            else:  # ("recv", src, tag): probe charged, receive scalar
                _, src, tag = out
                msg = yield from ctx.recv_g(source=src, tag=tag)
            x, y = msg.payload
            yield from state.handle_g(Ctx(msg.tag), x, y)
            handled += 1

    # ------------------------------------------------------------------
    def run(self, state: MatchingState) -> dict:
        return run_inline(self.run_g(state))

    def run_g(self, state: MatchingState):
        if self.channel is not None or self.fault_aware:
            return (yield from self._run_hardened_g(state))
        return (yield from self._run_plain_g(state))

    def _renounce_g(self, state: MatchingState, r: int):
        """ULFM-style recovery for detected-dead rank ``r``."""
        if self._plan is None or self._plan.crash_time(r) is None:
            # Detection is plan-driven, so this cannot happen for a merely
            # partitioned peer — the counter proves it stayed that way.
            self.ctx.counters().spurious_detections += 1
        yield from state.renounce_rank_g(r)
        if self.channel is not None:
            self.channel.on_rank_failed(r)

    def _run_plain_g(self, state: MatchingState):
        """Algorithm 3's main loop, event-driven."""
        ctx = self.ctx
        if self._resumed:
            self._resumed = False
            yield from ctx.reissue_parked_wait_g()
        else:
            yield from state.start_g()
        while True:
            # Coordinated-checkpoint boundary: charge-free no-op until a
            # cut is due, then parks so the scheduler can assemble the
            # snapshot (ranks caught in a blocking probe are safepoints
            # already). A resumed run re-enters here and the tick no-ops.
            yield from ctx.checkpoint_tick_g()
            self._iterations += 1
            ctx.prof_iteration(self._iterations)
            ctx.prof_stage("evoke")
            progressed = (yield from self._drain_incoming_g(state)) > 0
            if state.work:
                ctx.prof_stage("push")
                yield from state.drain_work_g()
                progressed = True
            if state.locally_done():
                break
            if not progressed:
                # Nothing local to do: the next change must arrive on the
                # wire. Real codes spin on Iprobe; we model the blocking
                # probe (fast-forwarding the clock) and account the wait.
                yield from self.ctx.probe_g()
        return {"iterations": self._iterations}

    def _run_hardened_g(self, state: MatchingState):
        """Event loop with reliable delivery and/or crash handling."""
        ctx = self.ctx
        chan = self.channel
        rc = ctx.counters()
        if self._resumed:
            self._resumed = False
            yield from ctx.reissue_parked_wait_g()
        else:
            yield from state.start_g()

        def deliver(src: int, user_tag: int, payload):
            x, y = payload
            yield from state.handle_g(Ctx(user_tag), x, y)

        while True:
            yield from ctx.checkpoint_tick_g()
            self._iterations += 1
            ctx.prof_iteration(self._iterations)
            if self.fault_aware:
                ctx.prof_stage("recovery")
                for r in ctx.failed_ranks():
                    if r not in state.dead_ranks:
                        yield from self._renounce_g(state, r)
            progressed = False
            ctx.prof_stage("evoke")
            if chan is not None:
                acks_before = rc.acks_sent
                if (yield from chan.poll_g(deliver)) > 0:
                    progressed = True
                if rc.acks_sent > acks_before:
                    # Any receipt (dups included) restarts the linger
                    # clock: the sender clearly had not seen our ack yet.
                    self._quiet_until = None
                yield from chan.service_g(ctx.now,
                                          may_abandon=state.locally_done())
            else:
                if (yield from self._drain_incoming_g(state)) > 0:
                    progressed = True
            if state.work:
                ctx.prof_stage("push")
                yield from state.drain_work_g()
                progressed = True

            if state.locally_done() and (chan is None or chan.idle()):
                if chan is None:
                    break
                # Quiescent, all sends acked. Linger for a quiet period,
                # still acking retransmissions, so peers can retire their
                # pending tables before we disappear. The clock starts no
                # earlier than the last partition heal — a deferred
                # retransmission cannot reach us before then.
                if self._quiet_until is None:
                    self._quiet_until = (
                        max(ctx.now, self._quiet_floor) + self._linger
                    )
                if ctx.now >= self._quiet_until:
                    break
                yield from ctx.probe_g(deadline=self._quiet_until)
                continue
            self._quiet_until = None

            if not progressed:
                deadline = chan.next_deadline() if chan is not None else None
                yield from ctx.probe_g(deadline=deadline)
        return {"iterations": self._iterations}

    # ------------------------------------------------------------------
    # checkpoint capture/restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Backend loop/transport state for a coordinated checkpoint."""
        blob: dict = {
            "iterations": self._iterations,
            "quiet_until": self._quiet_until,
        }
        if self.channel is not None:
            blob["channel"] = self.channel.snapshot()
        return blob

    def restore_checkpoint(self, blob: dict) -> None:
        """Adopt a snapshot; the next :meth:`run` resumes mid-loop."""
        self._iterations = blob["iterations"]
        self._quiet_until = blob["quiet_until"]
        if self.channel is not None:
            self.channel.restore(blob["channel"])
        self._resumed = True

    def finalize(self, state: MatchingState) -> None:
        self.ctx.free(self._fixed_bytes, "p2p-tables")
