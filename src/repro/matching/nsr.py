"""NSR — the baseline nonblocking Send-Recv backend (paper §IV-D(a)).

Table I mapping: Push = ``MPI_Isend`` (one message per event, no
aggregation), Evoke = ``MPI_Iprobe``, Process = ``MPI_Recv`` one message
at a time. The communication context rides in the message tag.

Termination is purely local (paper §V-D): a rank leaves the loop when its
``nghosts`` and ``awaiting`` counters reach zero; any still-in-flight
messages addressed to it are then algorithmically irrelevant (their
senders were already informed by this rank's final REJECT/INVALID).
"""

from __future__ import annotations

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.state import MatchingState
from repro.mpisim.context import RankContext


class NSRBackend:
    """One-message-per-event Send-Recv communication."""

    name = "nsr"
    handle_scale = 14.0  #: per-message (unbatched) application dispatch cost

    def __init__(self, ctx: RankContext, lg: LocalGraph):
        self.ctx = ctx
        self.lg = lg
        # Per-peer request tables plus the eager-protocol buffer pool the
        # MPI layer pins for every point-to-point peer — memory model only.
        deg = max(1, len(lg.neighbor_ranks))
        self._fixed_bytes = (
            64 * deg + ctx.machine.eager_pool_per_peer_bytes * len(lg.neighbor_ranks)
        )
        self.ctx.alloc(self._fixed_bytes, "p2p-tables")

    # ------------------------------------------------------------------
    def push(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> None:
        """Immediate nonblocking send; the context is the MPI tag."""
        self.ctx.isend(target_rank, (x, y), tag=int(ctx_id), nbytes=TRIPLE_BYTES)

    def _drain_incoming(self, state: MatchingState) -> int:
        """Probe-and-receive until the queue is (momentarily) empty."""
        ctx = self.ctx
        handled = 0
        while True:
            hdr = ctx.iprobe()
            if hdr is None:
                return handled
            src, tag, _ = hdr
            msg = ctx.recv(source=src, tag=tag)
            x, y = msg.payload
            state.handle(Ctx(tag), x, y)
            handled += 1

    # ------------------------------------------------------------------
    def run(self, state: MatchingState) -> dict:
        """Algorithm 3's main loop, event-driven."""
        state.start()
        iterations = 0
        while True:
            iterations += 1
            progressed = self._drain_incoming(state) > 0
            if state.work:
                state.drain_work()
                progressed = True
            if state.locally_done():
                break
            if not progressed:
                # Nothing local to do: the next change must arrive on the
                # wire. Real codes spin on Iprobe; we model the blocking
                # probe (fast-forwarding the clock) and account the wait.
                self.ctx.probe_block()
        return {"iterations": iterations}

    def finalize(self, state: MatchingState) -> None:
        self.ctx.free(self._fixed_bytes, "p2p-tables")
