"""Reliable, in-order delivery over the (possibly faulty) p2p substrate.

The fault plan (``repro.mpisim.faults``) can drop, duplicate, and delay
two-sided messages; the matching state machine assumes each cross edge's
REQUEST/REJECT/INVALID arrives exactly once. This module closes the gap
with a small transport protocol layered over ``isend``/``iprobe``/
``recv`` — the simulated analogue of what a production code would build
over an unreliable fabric (or what the fabric's own link layer does):

* **sequence numbers** per (sender, receiver) channel;
* **positive acknowledgment** of every DATA message;
* **timeout + retransmit** with capped exponential backoff in *virtual*
  time (deadlines are serviced by the owner's event loop via the timed
  ``probe``);
* **duplicate suppression and reorder buffering** at the receiver: user
  payloads are handed up exactly once, in per-channel send order, which
  restores MPI's non-overtaking guarantee under delay faults.

Wire format: DATA carries ``(seq, user_tag, user_payload)`` under
``TAG_DATA``; ACK carries the acknowledged ``seq`` under ``TAG_ACK``.
Everything is deterministic: retransmission deadlines are pure virtual
time, and iteration order of the pending tables is insertion order.

Failure handling: when the owner learns a peer crashed
(``ctx.failed_ranks``), :meth:`ReliableChannel.on_rank_failed` discards
unacknowledged traffic to the dead peer — retrying into a black hole
forever would otherwise prevent quiescence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Callable

from repro.mpisim.context import RankContext
from repro.mpisim.engine import run_inline
from repro.mpisim.errors import RetryExhausted

#: MPI tags used by the shim (application tags ride inside the payload;
#: matching's context tags are 1..4, so these cannot collide)
TAG_DATA = 100
TAG_ACK = 101

#: wire size of one ACK: acknowledged seq + minimal envelope
ACK_BYTES = 16
#: per-DATA-message header: the channel sequence number
SEQ_HEADER_BYTES = 8


@dataclass
class _Pending:
    """One sent-but-unacknowledged DATA message."""

    dst: int
    seq: int
    user_tag: int
    payload: Any
    nbytes: int  # user payload bytes (header added per send)
    deadline: float  # virtual time of the next retransmission
    attempt: int = 0


@dataclass
class _PeerState:
    """Receive-side state for one sending peer."""

    next_expected: int = 0
    #: out-of-order buffer: seq -> (user_tag, payload)
    held: dict[int, tuple[int, Any]] = field(default_factory=dict)


class ReliableChannel:
    """Ack/retry/in-order delivery shim for one rank.

    The owner drives it from an event loop::

        chan = ReliableChannel(ctx)
        chan.send(dst, tag, payload, nbytes)     # instead of ctx.isend
        chan.poll(handler)                       # instead of iprobe+recv
        chan.service(ctx.now)                    # fire due retransmits
        ctx.probe(deadline=chan.next_deadline())  # timed wait

    ``handler(src, user_tag, payload)`` sees each payload exactly once,
    in per-source send order.
    """

    def __init__(
        self,
        ctx: RankContext,
        *,
        rto: float | None = None,
        rto_max: float | None = None,
        max_retries: int = 25,
    ):
        self.ctx = ctx
        m = ctx.machine
        # Initial timeout: comfortably above one round trip (data + ack),
        # including both sides' software overheads.
        rtt = 2.0 * m.alpha + m.o_send + m.o_recv + m.o_probe + 2.0 * m.o_send
        self.rto = rto if rto is not None else 4.0 * rtt
        self.rto_max = rto_max if rto_max is not None else 64.0 * self.rto
        self.max_retries = max_retries

        self._next_seq: dict[int, int] = {}
        self._unacked: dict[tuple[int, int], _Pending] = {}
        self._peers: dict[int, _PeerState] = {}

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------
    def send(self, dst: int, user_tag: int, payload: Any, nbytes: int) -> None:
        """Reliably send ``payload`` to ``dst`` (returns immediately)."""
        run_inline(self.send_g(dst, user_tag, payload, nbytes))

    def send_g(self, dst: int, user_tag: int, payload: Any, nbytes: int):
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        pend = _Pending(
            dst=dst,
            seq=seq,
            user_tag=user_tag,
            payload=payload,
            nbytes=nbytes,
            deadline=self.ctx.now + self.rto,
        )
        self._unacked[(dst, seq)] = pend
        yield from self._transmit_g(pend)

    def _transmit(self, p: _Pending) -> None:
        run_inline(self._transmit_g(p))

    def _transmit_g(self, p: _Pending):
        if self.ctx.is_failed(p.dst):
            return  # dead peer; the entry is reaped by service/on_rank_failed
        yield from self.ctx.isend_g(
            p.dst,
            (p.seq, p.user_tag, p.payload),
            tag=TAG_DATA,
            nbytes=p.nbytes + SEQ_HEADER_BYTES,
        )

    def service(self, now: float, *, may_abandon: bool = False) -> int:
        """Retransmit every overdue unacked message; returns the count.

        ``may_abandon`` permits giving up on a message that has exhausted
        its retries (the caller asserts its own protocol state no longer
        depends on confirmation — e.g. it is locally quiescent); without
        it, exhaustion raises :class:`RetryExhausted`.
        """
        return run_inline(self.service_g(now, may_abandon=may_abandon))

    def service_g(self, now: float, *, may_abandon: bool = False):
        fired = 0
        rc = self.ctx.counters()
        plan = self.ctx.fault_plan
        for key in list(self._unacked):
            p = self._unacked.get(key)
            if p is None or p.deadline > now:
                continue
            if self.ctx.is_failed(p.dst):
                del self._unacked[key]
                continue
            if (
                plan is not None and plan.partitions
                and plan.partitioned(self.ctx.rank, p.dst, now)
            ):
                # The peer is unreachable, not dead: defer the retry to
                # the heal time without burning an attempt. This is what
                # keeps "partitioned" distinct from "crashed" — a healed
                # partition can never exhaust retries into an abandon,
                # and the failure detector (plan-driven) never fires for
                # it, so no spurious shrink is possible.
                p.deadline = plan.partition_clear_time(self.ctx.rank, p.dst, now)
                rc.partition_deferrals += 1
                continue
            if p.attempt >= self.max_retries:
                if may_abandon:
                    rc.abandoned += 1
                    del self._unacked[key]
                    continue
                raise RetryExhausted(
                    f"message seq={p.seq} to rank {p.dst} unacked after "
                    f"{p.attempt} retransmissions"
                )
            p.attempt += 1
            p.deadline = now + min(self.rto * (2.0 ** p.attempt), self.rto_max)
            rc.retransmits += 1
            yield from self._transmit_g(p)
            fired += 1
        return fired

    def next_deadline(self) -> float | None:
        """Earliest pending retransmission deadline, or None if idle."""
        if not self._unacked:
            return None
        return min(p.deadline for p in self._unacked.values())

    def idle(self) -> bool:
        """True when every sent message has been acknowledged."""
        return not self._unacked

    def unacked_count(self) -> int:
        return len(self._unacked)

    def on_rank_failed(self, rank: int) -> int:
        """Discard unacked traffic to a crashed peer; returns the count."""
        doomed = [k for k in self._unacked if k[0] == rank]
        for k in doomed:
            del self._unacked[k]
        return len(doomed)

    # ------------------------------------------------------------------
    # checkpoint capture/restore (engine pickles the returned tree)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Transport state for a coordinated checkpoint (picklable,
        no context references — the engine pickles it immediately)."""
        return {
            "next_seq": self._next_seq,
            "unacked": self._unacked,
            "peers": self._peers,
        }

    def restore(self, blob: dict) -> None:
        """Adopt a snapshot taken by :meth:`snapshot` (resume path)."""
        self._next_seq = blob["next_seq"]
        self._unacked = blob["unacked"]
        self._peers = blob["peers"]

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------
    def poll(self, handler: Callable[[int, int, Any], None]) -> int:
        """Drain every arrived message; returns messages *delivered up*.

        ACKs retire pending sends; DATA is acknowledged, deduplicated,
        and released to ``handler`` in per-source sequence order.
        """
        return run_inline(self.poll_g(handler))

    def poll_g(self, handler: Callable[[int, int, Any], None]):
        ctx = self.ctx
        rc = ctx.counters()
        delivered = 0
        while True:
            hdr = yield from ctx.iprobe_g()
            if hdr is None:
                return delivered
            src, tag, _ = hdr
            msg = yield from ctx.recv_g(source=src, tag=tag)
            if tag == TAG_ACK:
                self._unacked.pop((src, msg.payload), None)
                continue
            if tag != TAG_DATA:  # pragma: no cover - foreign traffic
                raise ValueError(f"unexpected tag {tag} on reliable channel")
            seq, user_tag, payload = msg.payload
            # Always ack, even duplicates: the original ack may be the
            # thing the network ate.
            if not ctx.is_failed(src):
                yield from ctx.isend_g(src, seq, tag=TAG_ACK, nbytes=ACK_BYTES)
                rc.acks_sent += 1
            peer = self._peers.setdefault(src, _PeerState())
            if seq < peer.next_expected or seq in peer.held:
                rc.dup_suppressed += 1
                continue
            peer.held[seq] = (user_tag, payload)
            while peer.next_expected in peer.held:
                ut, pl = peer.held.pop(peer.next_expected)
                peer.next_expected += 1
                # Generator-style handlers (coroutine engine) may park.
                res = handler(src, ut, pl)
                if isinstance(res, GeneratorType):
                    yield from res
                delivered += 1
