"""Validity and quality checks for matchings.

These are the oracles the test suite leans on:

* structural validity (symmetry, edges exist, no vertex matched twice);
* the half-approximation bound against the exact optimum (small graphs);
* cross-implementation agreement — with distinct weights the
  locally-dominant matching is unique, so serial and all four distributed
  backends must return bit-identical mate arrays.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.matching.serial import NO_MATE, exact_matching_weight, matching_weight


def check_matching_valid(g: CSRGraph, mate: np.ndarray) -> None:
    """Raise AssertionError unless ``mate`` is a valid matching of ``g``."""
    n = g.num_vertices
    if mate.shape != (n,):
        raise AssertionError(f"mate array has shape {mate.shape}, expected ({n},)")
    for v in range(n):
        u = int(mate[v])
        if u == NO_MATE:
            continue
        if not 0 <= u < n:
            raise AssertionError(f"mate[{v}] = {u} out of range")
        if u == v:
            raise AssertionError(f"vertex {v} matched to itself")
        if int(mate[u]) != v:
            raise AssertionError(f"asymmetric match: mate[{v}]={u} but mate[{u}]={mate[u]}")
        if not g.has_edge(v, u):
            raise AssertionError(f"matched pair ({v},{u}) is not an edge")


def check_matching_maximal(g: CSRGraph, mate: np.ndarray) -> None:
    """No edge may have both endpoints unmatched (maximality)."""
    u, v, _ = g.edge_list()
    un_u = mate[u] == NO_MATE
    un_v = mate[v] == NO_MATE
    bad = np.nonzero(un_u & un_v)[0]
    if len(bad):
        i = int(bad[0])
        raise AssertionError(
            f"matching not maximal: edge ({u[i]},{v[i]}) has both endpoints free"
        )


def check_half_approx(g: CSRGraph, mate: np.ndarray) -> tuple[float, float]:
    """Verify weight(matching) >= 0.5 * optimum; returns (got, optimum).

    Uses networkx's exact algorithm — keep graphs small (a few hundred
    vertices) when calling this.
    """
    got = matching_weight(g, mate)
    opt = exact_matching_weight(g)
    if got < 0.5 * opt - 1e-9:
        raise AssertionError(f"half-approx violated: {got} < 0.5 * {opt}")
    return got, opt


def assemble_global_mate(rank_results: list[dict], num_vertices: int) -> np.ndarray:
    """Stitch per-rank owned mate slices into the global mate array."""
    mate = np.full(num_vertices, NO_MATE, dtype=np.int64)
    for rr in rank_results:
        mate[rr["lo"] : rr["hi"]] = rr["mate"]
    return mate


def restrict_mate_to_survivors(
    mate: np.ndarray, dead_ranges: list[tuple[int, int]]
) -> np.ndarray:
    """Project a matching onto the subgraph that survived rank crashes.

    ``dead_ranges`` lists the ``[lo, hi)`` vertex ranges owned by crashed
    ranks (whose mate slices are unknown — the ranks died). The result
    unmatches every dead-owned vertex and every survivor whose recorded
    mate lives on a crashed rank, so :func:`check_matching_valid` applies
    on the surviving subgraph (maximality is *not* expected: edges into
    the dead region are unmatchable by construction).
    """
    out = mate.copy()
    if not dead_ranges:
        return out
    dead = np.zeros(len(mate), dtype=bool)
    for lo, hi in dead_ranges:
        dead[lo:hi] = True
    out[dead] = NO_MATE
    widowed = (out != NO_MATE) & dead[np.clip(out, 0, len(mate) - 1)]
    out[widowed] = NO_MATE
    return out


def check_cross_rank_consistency(mate: np.ndarray) -> None:
    """Both owners of a cross match must agree (mate[mate[v]] == v)."""
    for v in range(len(mate)):
        u = int(mate[v])
        if u != NO_MATE and int(mate[u]) != v:
            raise AssertionError(
                f"cross-rank disagreement: mate[{v}]={u}, mate[{u}]={mate[u]}"
            )
