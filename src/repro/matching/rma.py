"""RMA — MPI-3 one-sided backend with passive-target puts (§IV-D(b)).

Table I mapping: Push = ``MPI_Put``, Evoke = ``MPI_Win_flush_all`` +
``MPI_Neighbor_alltoall`` (outgoing-count exchange), Process = scan newly
visible slots of the local window.

Remote displacement scheme (paper Fig. 1): each rank's window is
partitioned into one region per topology neighbor, sized ``2 x (shared
ghost count)`` message slots. A prefix sum over its neighbors' ghost
counts gives each rank its region layout; one ``neighbor_alltoall``
delivers to every neighbor the start offset of *its* region in this
rank's window. After that, a put needs only a local per-neighbor cursor —
no distributed counters, no atomics.

Each outer iteration: flush (complete my puts) -> exchange cumulative
written counts -> read my window regions up to the advertised counts ->
process -> global reduction on remaining work for the exit decision
(paper §V-D: unlike Send-Recv, one-sided ranks cannot exit on local
evidence alone).
"""

from __future__ import annotations

import numpy as np

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.state import MatchingState
from repro.mpisim.context import RankContext

_SLOT = 3  # (context, x, y) int64 words per message slot


class RMABackend:
    """One-sided puts into per-neighbor window regions."""

    name = "rma"

    def __init__(self, ctx: RankContext, lg: LocalGraph, options=None):
        self.options = options
        self.ctx = ctx
        self.lg = lg
        self.topo = ctx.dist_graph_create_adjacent(lg.neighbor_ranks)
        nbrs = self.topo.neighbors
        self.nbr_index = {q: k for k, q in enumerate(nbrs)}

        # Region capacity per neighbor: 2x shared ghosts (paper's bound).
        caps = [2 * lg.ghost_counts[q] for q in nbrs]
        self.region_cap = caps
        # Prefix sum -> start *element* offset of each neighbor's region in
        # MY window (slots are 3 elements wide).
        starts = np.zeros(len(nbrs) + 1, dtype=np.int64)
        np.cumsum(caps, out=starts[1:])
        self.region_start = starts * _SLOT
        total_slots = int(starts[-1])
        self.win = ctx.win_allocate(total_slots * _SLOT, dtype=np.int64, fill=0)

        # Tell each neighbor where its region begins in my window; learn
        # where my regions begin in theirs (the Fig. 1 alltoall).
        mine = [int(self.region_start[k]) for k in range(len(nbrs))]
        self.remote_base = self.topo.neighbor_alltoall(mine, nbytes_per_item=8)

        self.write_cursor = [0] * len(nbrs)  # slots written per neighbor
        self.read_cursor = [0] * len(nbrs)  # slots consumed per neighbor
        # origin-side bookkeeping buffers (cursors + offsets), memory model
        ctx.alloc(8 * 4 * max(1, len(nbrs)), "rma-bookkeeping")

    # ------------------------------------------------------------------
    def push(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> None:
        k = self.nbr_index[target_rank]
        if self.write_cursor[k] >= self.region_cap[k]:
            raise RuntimeError(
                f"RMA region overflow towards rank {target_rank}: "
                f"{self.write_cursor[k]} >= {self.region_cap[k]} slots"
            )
        offset = (self.remote_base[k] + self.write_cursor[k] * _SLOT)
        self.win.put(target_rank, np.array([int(ctx_id), x, y], dtype=np.int64), offset)
        self.write_cursor[k] += 1

    def _evoke_and_process(self, state: MatchingState) -> int:
        """flush -> counts exchange -> read new window slots."""
        self.win.flush_all()
        counts = self.topo.neighbor_alltoall(
            [int(c) for c in self.write_cursor], nbytes_per_item=8
        )
        self.win.sync_local()
        buf = self.win.local
        handled = 0
        for k in range(len(self.topo.neighbors)):
            avail = int(counts[k])
            base = int(self.region_start[k])
            while self.read_cursor[k] < avail:
                s = (base + self.read_cursor[k] * _SLOT)
                ctx_id, x, y = int(buf[s]), int(buf[s + 1]), int(buf[s + 2])
                state.handle(Ctx(ctx_id), x, y)
                self.read_cursor[k] += 1
                handled += 1
        return handled

    # ------------------------------------------------------------------
    def run(self, state: MatchingState) -> dict:
        state.start()
        iterations = 0
        while True:
            iterations += 1
            self._evoke_and_process(state)
            state.drain_work()
            if self.ctx.allreduce(state.remaining()) == 0:
                break
        return {"iterations": iterations}

    def finalize(self, state: MatchingState) -> None:
        self.win.free()
        self.ctx.free(8 * 4 * max(1, len(self.topo.neighbors)), "rma-bookkeeping")
