"""RMA — MPI-3 one-sided backend with passive-target puts (§IV-D(b)).

Table I mapping: Push = ``MPI_Put``, Evoke = ``MPI_Win_flush_all`` +
``MPI_Neighbor_alltoall`` (outgoing-count exchange), Process = scan newly
visible slots of the local window.

Remote displacement scheme (paper Fig. 1): each rank's window is
partitioned into one region per topology neighbor, sized ``2 x (shared
ghost count)`` message slots. A prefix sum over its neighbors' ghost
counts gives each rank its region layout; one ``neighbor_alltoall``
delivers to every neighbor the start offset of *its* region in this
rank's window. After that, a put needs only a local per-neighbor cursor —
no distributed counters, no atomics.

Each outer iteration: flush (complete my puts) -> exchange cumulative
written counts -> read my window regions up to the advertised counts ->
process -> global reduction on remaining work for the exit decision
(paper §V-D: unlike Send-Recv, one-sided ranks cannot exit on local
evidence alone).

Fault tolerance (extension; see docs/fault_model.md):

* **Put-fate verification** — when the fault plan injects one-sided
  drop/corrupt faults, slots grow a fourth checksum word. Flush-before-
  counts ordering guarantees every advertised slot has physically
  arrived, so a zero checksum means *dropped* and a mismatch means
  *corrupted* — never merely late. The receiver consumes in order,
  stalls at the first bad slot, and piggybacks the bad-slot list on the
  next counts exchange; the origin re-puts those slots (a fresh fate per
  retry) from its sent-slot log. The termination reduction includes the
  outstanding bad-slot debt so the loop cannot exit with holes.

* **Crash recovery** — under a crash plan, setup moves inside the run
  loop and every collective is survivor-safe (:meth:`RankContext.agree`
  / epoch-keyed topology). One-sided data needs no resend on a crash:
  pending window updates live in the store independent of any
  collective, and counts are cumulative. Recovery renounces the dead
  rank, revokes the stale topology scope, rebuilds the process graph
  over the survivors, and resumes; the window itself is reused.

The fault-free path is byte-identical to the original backend.
"""

from __future__ import annotations

import numpy as np

from repro.graph.distribution import LocalGraph
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.state import MatchingState
from repro.mpisim.context import RankContext
from repro.mpisim.engine import run_inline
from repro.mpisim.errors import RankCrashed
from repro.mpisim.topology import DistGraphTopology
from repro.mpisim.window import Window
from repro.util.rng import derive_seed

_SLOT = 3  # (context, x, y) int64 words per message slot
_VSLOT = 4  # (checksum, context, x, y) words under put-fate verification

_CHK_MASK = 0x7FFFFFFFFFFFFFFF


def slot_checksum(ctx_id: int, x: int, y: int) -> int:
    """Nonzero int64 checksum over one message slot's payload words."""
    return (derive_seed(0x5EED, ctx_id, x, y) & _CHK_MASK) | 1


class RMABackend:
    """One-sided puts into per-neighbor window regions."""

    name = "rma"

    def __init__(self, ctx: RankContext, lg: LocalGraph, options=None):
        self.options = options
        self.ctx = ctx
        self.lg = lg
        plan = ctx.fault_plan
        self.fault_aware = plan is not None and plan.has_crashes()
        self.put_verify = plan is not None and plan.has_rma_faults()
        self._slot = _VSLOT if self.put_verify else _SLOT

        # Window layout is fixed over the *original* neighbor set (a dead
        # neighbor's region simply goes unused after recovery), so region
        # offsets survive a topology rebuild unchanged.
        self._all_nbrs = sorted(set(int(q) for q in lg.neighbor_ranks))
        caps = [2 * lg.ghost_counts[q] for q in self._all_nbrs]
        starts = np.zeros(len(self._all_nbrs) + 1, dtype=np.int64)
        np.cumsum(caps, out=starts[1:])
        self.region_cap = {q: int(c) for q, c in zip(self._all_nbrs, caps)}
        self.region_start = {
            q: int(starts[k]) * self._slot for k, q in enumerate(self._all_nbrs)
        }
        self._total_slots = int(starts[-1])

        self.write_cursor = {q: 0 for q in self._all_nbrs}  # slots written
        self.read_cursor = {q: 0 for q in self._all_nbrs}  # slots consumed
        # origin-side sent-slot log for checksum-retry re-puts
        self.sent_log: dict[int, list[tuple[int, int, int]]] = (
            {q: [] for q in self._all_nbrs} if self.put_verify else {}
        )
        # slots of MY window I found bad on the last scan, per sender
        self._my_bad: dict[int, tuple[int, ...]] = {}
        self.epoch: tuple[int, ...] = ()
        self._plan = plan
        self._recoveries = 0
        self._win_charged = False
        # Loop state lives on the instance so a checkpoint provider can
        # capture it while the rank is parked at a checkpoint tick.
        self._iterations = 0
        self._started = False
        self._resumed = False

        # Setup collectives are deferred to the first run() step: they
        # park, which must happen through the yield protocol under the
        # coroutine engine (nothing between here and run() touches the
        # clock or trace, so the deferral is bit-invisible). The fault-
        # aware path builds survivor-safe topology inside run() instead;
        # on resume, window and topology come from the checkpoint
        # (restore_checkpoint) — re-running the setup collectives would
        # charge time the uninterrupted run never spent.
        self.topo = None
        self.win = None
        self.remote_base: dict[int, int] = {}
        self._needs_setup = not (self.fault_aware or ctx.resuming)
        if not ctx.resuming:
            # origin-side bookkeeping buffers (cursors + offsets), memory
            # model; a resume's restored counters already carry this.
            ctx.alloc(8 * 4 * max(1, len(self._all_nbrs)), "rma-bookkeeping")

    def setup(self) -> None:
        """Run the deferred setup collectives now (threaded engine only;
        run() performs this automatically on its first step)."""
        run_inline(self._setup_comm_g())

    def _setup_comm_g(self):
        ctx = self.ctx
        self._needs_setup = False
        self.topo = yield from ctx.dist_graph_create_adjacent_g(
            self.lg.neighbor_ranks)
        self.win = yield from ctx.win_allocate_g(
            self._total_slots * self._slot, dtype=np.int64, fill=0
        )
        mine = [int(self.region_start[q]) for q in self.topo.neighbors]
        bases = yield from self.topo.neighbor_alltoall_g(mine, nbytes_per_item=8)
        self.remote_base = {
            q: int(b) for q, b in zip(self.topo.neighbors, bases)
        }

    # ------------------------------------------------------------------
    def push(self, ctx_id: Ctx, target_rank: int, x: int, y: int) -> None:
        run_inline(self.push_g(ctx_id, target_rank, x, y))

    def push_g(self, ctx_id: Ctx, target_rank: int, x: int, y: int):
        if self.write_cursor[target_rank] >= self.region_cap[target_rank]:
            raise RuntimeError(
                f"RMA region overflow towards rank {target_rank}: "
                f"{self.write_cursor[target_rank]} >= "
                f"{self.region_cap[target_rank]} slots"
            )
        cur = self.write_cursor[target_rank]
        offset = self.remote_base[target_rank] + cur * self._slot
        if self.put_verify:
            words = [slot_checksum(int(ctx_id), x, y), int(ctx_id), x, y]
            self.sent_log[target_rank].append((int(ctx_id), x, y))
        else:
            words = [int(ctx_id), x, y]
        yield from self.win.put_g(target_rank, np.array(words, dtype=np.int64),
                                  offset)
        self.write_cursor[target_rank] = cur + 1

    # ------------------------------------------------------------------
    def _exchange_counts_g(self):
        """Flush, then trade cumulative counts (+ bad-slot reports)."""
        yield from self.win.flush_all_g()
        nbrs = self.topo.neighbors
        if self.put_verify:
            items = [
                (int(self.write_cursor[q]), self._my_bad.get(q, ()))
                for q in nbrs
            ]
            nbytes_each = [8 + 8 * len(b) for _, b in items]
            recv, _ = yield from self.topo.neighbor_alltoallv_g(
                items, nbytes_each=nbytes_each)
            counts = {q: int(c) for q, (c, _) in zip(nbrs, recv)}
            reported = {q: b for q, (_, b) in zip(nbrs, recv) if b}
            return counts, reported
        recv = yield from self.topo.neighbor_alltoall_g(
            [int(self.write_cursor[q]) for q in nbrs], nbytes_per_item=8
        )
        return {q: int(c) for q, c in zip(nbrs, recv)}, {}

    def _scan_region_g(self, state: MatchingState, buf, q: int, avail: int):
        """Consume newly advertised slots from sender ``q`` in order.

        Under put-fate verification, consumption stalls at the first slot
        whose checksum fails (zero = dropped, mismatch = corrupted); the
        remainder of the advertised range is still scanned so every bad
        slot is reported — and re-put — in one round.
        """
        slot = self._slot
        base = self.region_start[q]
        handled = 0
        cur = self.read_cursor[q]
        if self.put_verify:
            bad: list[int] = []
            while cur < avail:
                s = base + cur * slot
                chk = int(buf[s])
                ctx_id, x, y = int(buf[s + 1]), int(buf[s + 2]), int(buf[s + 3])
                if chk != slot_checksum(ctx_id, x, y):
                    bad.append(cur)
                    break
                yield from state.handle_g(Ctx(ctx_id), x, y)
                cur += 1
                handled += 1
            self.read_cursor[q] = cur
            # report every remaining bad slot in the range, not just the
            # first, so the origin repairs them all in one retry round
            for probe in range(cur + 1, avail):
                s = base + probe * slot
                chk = int(buf[s])
                ctx_id, x, y = int(buf[s + 1]), int(buf[s + 2]), int(buf[s + 3])
                if chk != slot_checksum(ctx_id, x, y):
                    bad.append(probe)
            if bad:
                self._my_bad[q] = tuple(bad)
            else:
                self._my_bad.pop(q, None)
        else:
            while cur < avail:
                s = base + cur * slot
                yield from state.handle_g(
                    Ctx(int(buf[s])), int(buf[s + 1]), int(buf[s + 2]))
                cur += 1
                handled += 1
            self.read_cursor[q] = cur
        return handled

    def _repair_slots_g(self, reported: dict[int, tuple[int, ...]]):
        """Re-put slots a neighbor reported bad (fresh fate per retry)."""
        rc = self.ctx.counters()
        for q, bads in reported.items():
            for sidx in bads:
                ctx_id, x, y = self.sent_log[q][sidx]
                words = [slot_checksum(ctx_id, x, y), ctx_id, x, y]
                yield from self.win.put_g(
                    q,
                    np.array(words, dtype=np.int64),
                    self.remote_base[q] + sidx * self._slot,
                )
                rc.put_retries += 1

    def _evoke_and_process_g(self, state: MatchingState):
        """flush -> counts exchange -> read new window slots."""
        self.ctx.prof_stage("evoke")
        counts, reported = yield from self._exchange_counts_g()
        yield from self.win.sync_local_g()
        buf = self.win.local
        self.ctx.prof_stage("process")
        handled = 0
        for q in self.topo.neighbors:
            handled += yield from self._scan_region_g(state, buf, q, counts[q])
        if reported:
            yield from self._repair_slots_g(reported)
        return handled

    def _verify_debt(self) -> int:
        """Bad slots this rank is still waiting to have repaired."""
        return sum(len(v) for v in self._my_bad.values())

    # ------------------------------------------------------------------
    def run(self, state: MatchingState) -> dict:
        return run_inline(self.run_g(state))

    def run_g(self, state: MatchingState):
        if not self.fault_aware:
            return (yield from self._run_plain_g(state))
        return (yield from self._run_survivable_g(state))

    def _run_plain_g(self, state: MatchingState):
        ctx = self.ctx
        if self._needs_setup:
            yield from self._setup_comm_g()
        if self._resumed:
            self._resumed = False
            yield from ctx.reissue_parked_wait_g()
        else:
            yield from state.start_g()
        while True:
            # Coordinated-checkpoint safepoint: parks here (charge-free)
            # when a cut is due; a resumed run re-enters at this exact
            # point and the tick no-ops (the next due time was advanced
            # before the snapshot was taken).
            yield from ctx.checkpoint_tick_g()
            self._iterations += 1
            ctx.prof_iteration(self._iterations)
            yield from self._evoke_and_process_g(state)
            ctx.prof_stage("push")
            yield from state.drain_work_g()
            ctx.prof_stage("terminate")
            done = yield from ctx.allreduce_g(
                state.remaining() + self._verify_debt())
            if done == 0:
                break
        return {"iterations": self._iterations}

    # -- crash-survivable path -----------------------------------------
    def _setup_g(self, state: MatchingState):
        """(Re)build survivor topology, window, and region bases.

        SPMD-symmetric and idempotent per failure epoch: every survivor
        runs the same agreement sequence even when (say) the window
        already exists, so per-scope collective sequence numbers stay
        aligned across ranks re-entering from different program points.
        """
        ctx = self.ctx
        ctx.prof_stage("recovery")
        self.epoch = tuple(sorted(state.dead_ranks))
        live = [q for q in self._all_nbrs if q not in state.dead_ranks]
        self.topo = yield from ctx.shrink_rebuild_topology_g(
            live, epoch=self.epoch)
        self.win = yield from ctx.win_allocate_survivor_g(
            self._total_slots * self._slot,
            dtype=np.int64,
            fill=0,
            epoch=self.epoch,
            tag="rma-data",
            charge_memory=not self._win_charged,
        )
        self._win_charged = True
        mine = [int(self.region_start[q]) for q in self.topo.neighbors]
        bases = yield from self.topo.neighbor_alltoall_g(mine, nbytes_per_item=8)
        self.remote_base = {q: int(b) for q, b in zip(self.topo.neighbors, bases)}

    def _recover_g(self, state: MatchingState, blame: int):
        """Renounce newly detected failures and schedule a rebuild."""
        ctx = self.ctx
        ctx.prof_stage("recovery")
        for r in sorted(ctx.failed_ranks()):
            if r not in state.dead_ranks:
                if self._plan is None or self._plan.crash_time(r) is None:
                    # Detection is plan-driven: a partitioned-but-alive
                    # peer can never land here; the counter proves it.
                    ctx.counters().spurious_detections += 1
                yield from state.renounce_rank_g(r)
        if self.topo is not None:
            # Strand-proof the abandoned scope: survivors still blocked in
            # its collectives raise instead of waiting for us.
            ctx.revoke_topology(self.topo, blame)
        self.topo = None
        for r in state.dead_ranks:
            self._my_bad.pop(r, None)
        self._recoveries += 1

    def _run_survivable_g(self, state: MatchingState):
        ctx = self.ctx
        if self._resumed:
            self._resumed = False
            yield from ctx.reissue_parked_wait_g()
        while True:
            try:
                if self.topo is None:
                    yield from self._setup_g(state)
                if not self._started:
                    yield from state.start_g()
                    self._started = True
                while True:
                    yield from ctx.checkpoint_tick_g()
                    self._iterations += 1
                    ctx.prof_iteration(self._iterations)
                    yield from self._evoke_and_process_g(state)
                    ctx.prof_stage("push")
                    yield from state.drain_work_g()
                    ctx.prof_stage("terminate")
                    debt = state.remaining() + self._verify_debt()
                    agreed = yield from ctx.agree_g(
                        debt, epoch=self.epoch, label="loop")
                    if int(agreed) == 0:
                        return {
                            "iterations": self._iterations,
                            "recoveries": self._recoveries,
                        }
            except RankCrashed as e:
                yield from self._recover_g(state, e.rank)

    # ------------------------------------------------------------------
    # checkpoint capture/restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Backend loop/window state for a coordinated checkpoint.

        The shared :class:`~repro.mpisim.window._WindowStore` is captured
        by reference: the engine pickles the whole cut in one pass, so
        every rank's blob resolves to the *same* restored store object —
        window sharing survives the round trip by pickle memoization.
        Topology handles are captured as ``(scope_id, adjacency, epoch)``
        and rebuilt communication-free on resume.
        """
        return {
            "iterations": self._iterations,
            "started": self._started,
            "recoveries": self._recoveries,
            "epoch": self.epoch,
            "write_cursor": self.write_cursor,
            "read_cursor": self.read_cursor,
            "sent_log": self.sent_log,
            "my_bad": self._my_bad,
            "win_charged": self._win_charged,
            "remote_base": self.remote_base,
            "win_store": None if self.win is None else self.win._store,
            "topo": None
            if self.topo is None
            else (self.topo.scope_id, self.topo.adjacency, self.topo.epoch),
        }

    def restore_checkpoint(self, blob: dict) -> None:
        """Adopt a snapshot; the next :meth:`run` resumes mid-loop."""
        self._iterations = blob["iterations"]
        self._started = blob["started"]
        self._recoveries = blob["recoveries"]
        self.epoch = blob["epoch"]
        self.write_cursor = blob["write_cursor"]
        self.read_cursor = blob["read_cursor"]
        self.sent_log = blob["sent_log"]
        self._my_bad = blob["my_bad"]
        self._win_charged = blob["win_charged"]
        self.remote_base = blob["remote_base"]
        if blob["win_store"] is not None:
            self.win = Window(self.ctx, blob["win_store"])
        if blob["topo"] is not None:
            scope_id, adjacency, epoch = blob["topo"]
            self.topo = DistGraphTopology(
                self.ctx, scope_id, adjacency, epoch=epoch
            )
        self._resumed = True

    def finalize(self, state: MatchingState) -> None:
        self.win.free()
        self.ctx.free(8 * 4 * max(1, len(self._all_nbrs)), "rma-bookkeeping")
