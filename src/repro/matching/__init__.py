"""`repro.matching` — the paper's core contribution, reproduced.

Serial half-approximate weighted matching (greedy and locally-dominant)
plus the distributed locally-dominant algorithm over four communication
backends: nonblocking Send-Recv (``nsr``), MPI-3 RMA (``rma``), MPI-3
neighborhood collectives (``ncl``), and a MatchBox-P-style baseline
(``mbp``). See :func:`run_matching` for the one-call entry point.
"""

from repro.matching.api import MatchingRunResult, run_matching
from repro.matching.config import RunConfig
from repro.matching.contexts import TRIPLE_BYTES, Ctx
from repro.matching.driver import BACKENDS, MatchingOptions, matching_rank_main
from repro.matching.serial import (
    NO_MATE,
    MatchingResult,
    exact_matching_weight,
    greedy_matching,
    locally_dominant_matching,
    matching_weight,
)
from repro.matching.state import MatchingState, MatchStats
from repro.matching.pathgrow import path_growing_matching
from repro.matching.suitor import suitor_matching
from repro.matching.vectorized import locally_dominant_matching_vec
from repro.matching.verify import (
    assemble_global_mate,
    check_cross_rank_consistency,
    check_half_approx,
    check_matching_maximal,
    check_matching_valid,
)

__all__ = [
    "run_matching",
    "MatchingRunResult",
    "RunConfig",
    "MatchingOptions",
    "matching_rank_main",
    "BACKENDS",
    "Ctx",
    "TRIPLE_BYTES",
    "NO_MATE",
    "MatchingResult",
    "greedy_matching",
    "locally_dominant_matching",
    "locally_dominant_matching_vec",
    "suitor_matching",
    "path_growing_matching",
    "matching_weight",
    "exact_matching_weight",
    "MatchingState",
    "MatchStats",
    "check_matching_valid",
    "check_matching_maximal",
    "check_half_approx",
    "check_cross_rank_consistency",
    "assemble_global_mate",
]
