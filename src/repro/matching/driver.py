"""Distributed-matching driver: ties state, backends, and the engine
together (paper Algorithm 3 and §IV-D).

The same :class:`~repro.matching.state.MatchingState` transition system
runs over any of the four backends; only Push/Evoke/Process differ
(paper Table I). ``matching_rank_main`` is the SPMD target executed by
every simulated rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.distribution import LocalGraph
from repro.matching.incl import INCLBackend
from repro.matching.mbp import MBPBackend
from repro.matching.ncl import NCLBackend
from repro.matching.nsr import NSRBackend
from repro.matching.nsr_agg import NSRAggBackend
from repro.matching.rma import RMABackend
from repro.matching.state import MatchingState
from repro.mpisim.context import RankContext

BACKENDS = {
    "nsr": NSRBackend,
    "rma": RMABackend,
    "ncl": NCLBackend,
    "mbp": MBPBackend,
    # extension (not in the paper): nonblocking neighborhood collectives
    # with compute/transfer overlap — see repro/matching/incl.py
    "incl": INCLBackend,
    # extension: NSR semantics over the message-aggregation layer — the
    # ablation point between nsr and ncl (repro/matching/nsr_agg.py)
    "nsr-agg": NSRAggBackend,
}


@dataclass(frozen=True)
class MatchingOptions:
    """Tunables for one matching run."""

    eager_reject: bool = False  #: use the paper's literal Algorithm 6
    #: REQUEST handling instead of deferred proposals (ablation only —
    #: quality and cross-backend determinism are not guaranteed)
    tie_break: str = "hash"  #: "hash" (paper's fix) or "id" (the naive,
    #: pathological scheme from §III; ablation only)
    charge_graph_memory: bool = True  #: register CSR bytes with the
    #: memory model (identical across models; off to isolate buffers)

    # -- fault tolerance (docs/fault_model.md) ------------------------
    reliable: bool | None = None  #: force the ack/retry delivery shim on
    #: (True) or off (False); None = auto, on exactly when the engine's
    #: fault plan injects message faults. NSR only.
    rto: float | None = None  #: initial retransmission timeout (s,
    #: virtual); None derives ~4x RTT from the machine model
    rto_max: float | None = None  #: backoff cap (s); None = 64x rto
    max_retries: int = 25  #: retransmissions per message before giving up

    # -- message aggregation (nsr-agg backend) ------------------------
    agg_flush_bytes: int | None = 8192  #: lane auto-flush byte threshold
    #: (None disables; lanes then flush only at iteration boundaries)
    agg_flush_count: int | None = None  #: lane auto-flush message-count
    #: threshold (None disables)
    agg_flush_delay: float | None = 5e-6  #: aggregation timer (virtual s):
    #: how long an idle rank lingers for more coalescable traffic before
    #: flushing its lanes (None flushes immediately on running dry)

    # -- simulation budgets (guard runaway runs; SimLimitExceeded) ----
    max_ops: int | None = None  #: engine operation budget
    max_vtime: float | None = None  #: virtual-time budget (s)


def make_backend(
    name: str,
    ctx: RankContext,
    lg: LocalGraph,
    options: "MatchingOptions | None" = None,
):
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise KeyError(f"unknown matching backend {name!r}; have {sorted(BACKENDS)}") from None
    return cls(ctx, lg, options)


def matching_rank_main(
    ctx: RankContext,
    parts: list[LocalGraph],
    model: str,
    options: MatchingOptions | None = None,
):
    """SPMD entry point: run half-approx matching on this rank's partition.

    Returns a per-rank result dict with the owned mate slice, algorithm
    statistics, and backend iteration counts; the harness assembles the
    global matching from these.

    Written as a generator so the rank program runs unchanged under both
    execution engines: the threaded engine drives it to completion inline
    (parks block the rank thread and the generator never suspends), the
    coroutine engine single-steps it from the scheduler loop.
    """
    options = options or MatchingOptions()
    lg = parts[ctx.rank]
    # Resuming from a coordinated checkpoint: reconstruction is charge-
    # free (the restored clocks and counters already cover everything up
    # to the cut), so every ctx.alloc below is skipped and the mutable
    # state/backends adopt the snapshot instead of starting fresh.
    resuming = ctx.resuming
    rblob = ctx.resume_app_state() if resuming else None
    if resuming and rblob is None:
        raise ValueError(
            f"cannot resume rank {ctx.rank}: the checkpoint carries no "
            f"application state (was it taken by a non-matching workload?)"
        )
    if options.charge_graph_memory and not resuming:
        ctx.alloc(lg.memory_bytes(), "graph-csr")

    backend = make_backend(model, ctx, lg, options)
    state = MatchingState(
        lg,
        # Prefer the generator form of Push when the backend has one
        # (parking pushes must reach the scheduler via the yield protocol
        # under the coroutine engine); non-parking pushes (ncl, incl)
        # stay plain callables — MatchingState drives either.
        push=getattr(backend, "push_g", backend.push),
        charge=ctx.compute,
        eager_reject=options.eager_reject,
        handle_scale=getattr(backend, "handle_scale", 1.0),
        tie_break=options.tie_break,
        # Vector-engine fused push (plain method, guard-checked); falls
        # back to push/push_g per call when the guard cannot prove
        # minimality, and is simply absent on most backends.
        push_fast=getattr(backend, "push_fast", None),
    )
    # Candidate-order arrays, eviction/pending sets, pair table — all
    # O(local edges); register them with the memory model.
    state_bytes = 8 * lg.num_local_directed_edges + 64 * lg.num_owned
    if not resuming:
        ctx.alloc(state_bytes, "matching-state")

    if rblob is not None:
        restore = getattr(backend, "restore_checkpoint", None)
        if restore is None:
            raise ValueError(
                f"backend {model!r} does not support checkpoint resume"
            )
        state.restore(rblob["state"])
        restore(rblob["backend"])

    snap_fn = getattr(backend, "snapshot", None)
    if snap_fn is not None:
        ctx.register_checkpoint_provider(
            lambda: {"state": state.snapshot(), "backend": snap_fn()}
        )

    info = yield from backend.run_g(state)
    backend.finalize(state)
    ctx.free(state_bytes, "matching-state")
    if options.charge_graph_memory:
        ctx.free(lg.memory_bytes(), "graph-csr")

    return {
        "rank": ctx.rank,
        "lo": lg.lo,
        "hi": lg.hi,
        "mate": state.mate_global(),
        "iterations": info.get("iterations", 0),
        "recoveries": info.get("recoveries", 0),
        "stats": state.stats,
        "model": model,
    }
