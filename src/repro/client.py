"""`repro.client` — thin stdlib HTTP client for the matching service.

>>> from repro.client import ServiceClient
>>> from repro.service import GraphRef, JobRequest
>>> c = ServiceClient("http://127.0.0.1:8123")            # doctest: +SKIP
>>> env = c.submit(JobRequest(GraphRef("rmat-s10"), 8))   # doctest: +SKIP
>>> env["cache"], env["result"]["record"]["makespan"]     # doctest: +SKIP

Everything speaks the versioned wire schema in
:mod:`repro.service.schema`; no third-party HTTP stack is involved
(``urllib.request`` only), so any environment that can import ``repro``
can be a client.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.service.schema import JobRequest, JobResult, SchemaError


class ServiceError(RuntimeError):
    """The service answered with an error (HTTP status + body message)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://host:8123")``."""

    def __init__(self, url: str, *, timeout: float = 630.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
    ) -> tuple[int, bytes, str]:
        req = urllib.request.Request(
            f"{self.url}{path}", data=body, method=method
        )
        if body is not None:
            req.add_header("Content-Type", content_type)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return (
                    resp.status,
                    resp.read(),
                    resp.headers.get("Content-Type", ""),
                )
        except urllib.error.HTTPError as e:
            detail = e.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServiceError(e.code, detail) from None

    def _json(self, method: str, path: str, body: bytes | None = None,
              content_type: str = "application/json") -> dict:
        status, blob, _ = self._request(method, path, body, content_type)
        payload = json.loads(blob)
        if isinstance(payload, dict) and "result" in payload and payload["result"]:
            # parse through the schema so version/unknown-field checks run
            payload["result"] = JobResult.from_dict(payload["result"]).to_dict()
        return payload

    # -- API ----------------------------------------------------------
    def health(self) -> dict:
        return self._json("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/v1/stats")

    def submit(
        self,
        request: JobRequest,
        *,
        wait: bool = True,
        toml_body: str | None = None,
    ) -> dict:
        """Submit one job; returns the response envelope.

        Envelope keys: ``job_id``, ``state``, ``cache`` ("hit" / "miss" /
        "coalesced"), and — once done — ``result`` (the cache-stable
        :class:`JobResult` payload, bit-identical across hit and miss).
        ``toml_body`` sends raw TOML instead of the request's JSON (the
        server decodes both through the same schema path).
        """
        path = "/v1/jobs" if wait else "/v1/jobs?wait=0"
        if toml_body is not None:
            return self._json(
                "POST", path, toml_body.encode(), "application/toml"
            )
        return self._json("POST", path, request.to_json().encode())

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def result(self, key: str) -> JobResult:
        env = self._json("GET", f"/v1/results/{key}")
        if not env.get("result"):
            raise SchemaError(f"service returned no result for key {key}")
        return JobResult.from_dict(env["result"])

    def artifact(self, key: str, name: str) -> bytes:
        _, blob, _ = self._request("GET", f"/v1/artifacts/{key}/{name}")
        return blob

    def shutdown(self) -> dict:
        return self._json("POST", "/v1/shutdown", b"")
