"""`repro.cc` — distributed connected components (label propagation).

The third owner-computes kernel (after matching and coloring) riding the
same communication substrate. Label propagation is the bulk-synchronous
workhorse of distributed CC: every vertex repeatedly adopts the minimum
label in its closed neighborhood; cross-partition neighborhoods make the
boundary exchange — and therefore the communication model — pluggable.
"""

from repro.cc.distributed import CCRunResult, cc_rank_main, run_cc
from repro.cc.serial import connected_components, num_components, validate_components

__all__ = [
    "connected_components",
    "num_components",
    "validate_components",
    "run_cc",
    "cc_rank_main",
    "CCRunResult",
]
