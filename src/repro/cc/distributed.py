"""Distributed label-propagation connected components.

Bulk-synchronous rounds: each rank sweeps its owned vertices, adopting
the minimum label over the closed neighborhood (ghost labels from the
last exchange); changed boundary labels are shipped to neighbor ranks;
an allreduce of the change count decides termination. Rounds are
proportional to the graph diameter in partition hops.

The exchange step is implemented over NSR (per-update sends + DONE
sentinels) and NCL (aggregated ``neighbor_alltoallv``) — the same two
poles of the paper's communication-model spectrum, for a third kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.distribution import LocalGraph, partition_graph
from repro.mpisim.context import RankContext
from repro.mpisim.engine import Engine
from repro.mpisim.machine import MachineModel, cori_aries

_UPDATE_TAG = 31
_DONE_TAG = 32
_COST_SWEEP = 1.5  #: per neighbor examined
_COST_UPDATE = 1.5  #: per boundary update applied


class _CCState:
    def __init__(self, ctx: RankContext, lg: LocalGraph):
        self.ctx = ctx
        self.lg = lg
        # initial label = own global id
        self.labels = np.arange(lg.lo, lg.hi, dtype=np.int64)
        self.ghost_labels: dict[int, int] = {}
        self.boundary: dict[int, list[int]] = {q: [] for q in lg.neighbor_ranks}
        owners = lg.dist.owner_array(lg.adjncy)
        src = np.repeat(np.arange(lg.lo, lg.hi, dtype=np.int64), np.diff(lg.xadj))
        for v, u, q in zip(src, lg.adjncy, owners):
            if q != lg.rank:
                self.boundary[int(q)].append(int(v))
                self.ghost_labels[int(u)] = int(u)  # ghost starts as itself
        for q in self.boundary:
            self.boundary[q] = sorted(set(self.boundary[q]))

    def sweep(self) -> set[int]:
        """Adopt minimum closed-neighborhood labels; returns changed ids."""
        lg = self.lg
        changed: set[int] = set()
        # Iterate until the local sweep stabilizes (propagates labels
        # across the whole partition in one round, like real codes do).
        dirty = True
        while dirty:
            dirty = False
            for i in range(lg.num_owned):
                v = lg.lo + i
                nbrs, _ = lg.row(v)
                self.ctx.compute(_COST_SWEEP * max(1, len(nbrs)))
                best = int(self.labels[i])
                for u in nbrs:
                    u = int(u)
                    lab = (
                        int(self.labels[u - lg.lo])
                        if lg.owns(u)
                        else self.ghost_labels[u]
                    )
                    if lab < best:
                        best = lab
                if best < self.labels[i]:
                    self.labels[i] = best
                    changed.add(v)
                    dirty = True
        return changed

    def updates_for(self, q: int, changed: set[int]) -> list[tuple[int, int]]:
        return [
            (v, int(self.labels[v - self.lg.lo]))
            for v in self.boundary[q]
            if v in changed
        ]

    def apply_update(self, vertex: int, label: int) -> None:
        self.ctx.compute(_COST_UPDATE)
        if label < self.ghost_labels.get(vertex, vertex):
            self.ghost_labels[vertex] = label


def _exchange_nsr(ctx, state, changed) -> None:
    lg = state.lg
    for q in lg.neighbor_ranks:
        for v, lab in state.updates_for(q, changed):
            ctx.isend(q, (v, lab), tag=_UPDATE_TAG, nbytes=16)
        ctx.isend(q, None, tag=_DONE_TAG, nbytes=8)
    waiting = set(lg.neighbor_ranks)
    while waiting:
        msg = ctx.recv(tag=ctx.ANY_TAG)
        if msg.tag == _DONE_TAG:
            waiting.discard(msg.src)
        else:
            state.apply_update(*msg.payload)


def _make_ncl_exchange(ctx, state):
    topo = ctx.dist_graph_create_adjacent(state.lg.neighbor_ranks)

    def exchange(changed) -> None:
        items, nbytes = [], []
        for q in topo.neighbors:
            flat = np.array(
                [x for vl in state.updates_for(q, changed) for x in vl],
                dtype=np.int64,
            )
            items.append(flat)
            nbytes.append(int(flat.nbytes))
        received, _ = topo.neighbor_alltoallv(items, nbytes_each=nbytes)
        for arr in received:
            for s in range(0, len(arr), 2):
                state.apply_update(int(arr[s]), int(arr[s + 1]))

    return exchange


def cc_rank_main(ctx: RankContext, parts: list[LocalGraph], model: str) -> dict:
    lg = parts[ctx.rank]
    ctx.alloc(lg.memory_bytes(), "graph-csr")
    state = _CCState(ctx, lg)
    if model == "nsr":
        exchange = lambda ch: _exchange_nsr(ctx, state, ch)  # noqa: E731
    elif model == "ncl":
        exchange = _make_ncl_exchange(ctx, state)
    else:
        raise KeyError(f"unknown cc model {model!r}; have nsr/ncl")

    rounds = 0
    while True:
        rounds += 1
        changed = state.sweep()
        exchange(changed)
        if ctx.allreduce(len(changed)) == 0:
            break
    ctx.free(lg.memory_bytes(), "graph-csr")
    return {"lo": lg.lo, "hi": lg.hi, "labels": state.labels, "rounds": rounds}


@dataclass
class CCRunResult:
    model: str
    nprocs: int
    labels: np.ndarray
    num_components: int
    rounds: int
    makespan: float
    counters: object


def run_cc(
    g: CSRGraph,
    nprocs: int,
    model: str = "ncl",
    machine: MachineModel | None = None,
) -> CCRunResult:
    """Distributed connected components of ``g``."""
    machine = machine or cori_aries()
    parts = partition_graph(g, nprocs)
    engine = Engine(nprocs, machine)
    res = engine.run(cc_rank_main, args=(parts, model))
    labels = np.empty(g.num_vertices, dtype=np.int64)
    for rr in res.rank_results:
        labels[rr["lo"] : rr["hi"]] = rr["labels"]
    return CCRunResult(
        model=model,
        nprocs=nprocs,
        labels=labels,
        num_components=len(np.unique(labels)),
        rounds=max(rr["rounds"] for rr in res.rank_results),
        makespan=res.makespan,
        counters=res.counters,
    )
