"""Serial connected components — oracle for the distributed version."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph


def connected_components(g: CSRGraph) -> np.ndarray:
    """Component labels: each vertex gets the minimum vertex id in its
    component (the canonical labeling label propagation converges to)."""
    n = g.num_vertices
    label = np.full(n, -1, dtype=np.int64)
    for root in range(n):
        if label[root] >= 0:
            continue
        label[root] = root
        q: deque[int] = deque([root])
        while q:
            v = q.popleft()
            for u in g.neighbors(v):
                u = int(u)
                if label[u] < 0:
                    label[u] = root
                    q.append(u)
    return label


def num_components(labels: np.ndarray) -> int:
    return len(np.unique(labels))


def validate_components(g: CSRGraph, labels: np.ndarray) -> None:
    """Raise AssertionError unless ``labels`` is a proper CC labeling."""
    if labels.shape != (g.num_vertices,):
        raise AssertionError("label array has wrong shape")
    u, v, _ = g.edge_list()
    if np.any(labels[u] != labels[v]):
        raise AssertionError("edge endpoints carry different labels")
    # labels must be canonical: the minimum vertex id of the component
    for lbl in np.unique(labels):
        members = np.nonzero(labels == lbl)[0]
        if members.min() != lbl:
            raise AssertionError(
                f"label {lbl} is not the minimum member id ({members.min()})"
            )
