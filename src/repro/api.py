"""`repro.api` — the library-first facade every run flows through.

One module owns run orchestration: the CLI subcommands, the experiment
harness (`repro.harness.*`), and the matching-as-a-service job server
(`repro.service`) are all thin clients of the four calls here:

* :func:`run` — one (graph, nprocs, model) point → :class:`RunRecord`;
* :func:`sweep` — a scaling sweep over points × models → figure + records;
* :func:`profile` — one span-profiled run → :class:`ProfileRun`
  (phase tables, critical path, optional artifact bundle on disk);
* :func:`chaos` — a seeded fault-plan sweep → ``ChaosReport``.

The historical entry points ``repro.harness.runner.run_one`` /
``run_models`` and ``repro.harness.sweep.scaling_sweep`` /
``best_speedup_over_baseline`` still work as ``DeprecationWarning``
shims that delegate here bit-identically (see docs/api.md).

>>> from repro import api
>>> rec = api.run(g, 16, "ncl")                     # doctest: +SKIP
>>> fig, recs = api.sweep(points, title="fig 5")    # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.graph.csr import CSRGraph
from repro.matching.api import MatchingRunResult, run_matching
from repro.matching.config import RunConfig
from repro.matching.driver import MatchingOptions
from repro.mpisim.faults import FaultPlan
from repro.mpisim.machine import MachineModel, cori_aries
from repro.mpisim.power import EnergyReport, PowerModel, energy_report

if TYPE_CHECKING:  # pure type references; avoids harness import cycles
    from repro.harness.chaos import ChaosReport
    from repro.harness.figures import FigureData

MODELS = ("nsr", "rma", "ncl")


@dataclass
class RunRecord:
    """One experiment data point (the harness's universal currency)."""

    graph: str
    nprocs: int
    model: str
    makespan: float  #: simulated seconds (the paper's "execution time")
    weight: float
    iterations: int
    messages: int
    bytes_moved: int
    mem_per_rank_mb: float
    energy: EnergyReport
    result: MatchingRunResult | None = None  #: full payload (optional)

    def speedup_over(self, baseline: "RunRecord") -> float:
        return baseline.makespan / self.makespan if self.makespan > 0 else float("inf")


def _build_config(
    config: RunConfig | None,
    machine: MachineModel | None,
    options: MatchingOptions | None,
    faults: FaultPlan | None,
    engine: str | None,
) -> RunConfig:
    """Fold the convenience kwargs into a RunConfig.

    Passing ``config=`` together with any convenience kwarg is an error,
    mirroring :func:`repro.matching.api.run_matching`'s shim rule.
    """
    extras = {
        k: v
        for k, v in (
            ("machine", machine),
            ("options", options),
            ("faults", faults),
            ("engine", engine),
        )
        if v is not None
    }
    if config is not None:
        if extras:
            raise TypeError(
                "api.run: cannot mix config= with convenience keyword "
                f"argument(s) {sorted(extras)}; fold them into the RunConfig"
            )
        return config
    cfg = RunConfig(
        machine=machine, options=options, faults=faults, compute_weight=True
    )
    if engine is not None:
        cfg = cfg.evolve(engine=engine)
    return cfg


def run(
    g: CSRGraph,
    nprocs: int,
    model: str,
    *,
    config: RunConfig | None = None,
    label: str = "?",
    machine: MachineModel | None = None,
    power: PowerModel | None = None,
    options: MatchingOptions | None = None,
    faults: FaultPlan | None = None,
    keep_result: bool = False,
    engine: str | None = None,
) -> RunRecord:
    """Execute one matching run and package its measurements.

    The run itself is entirely described by ``config`` (a
    :class:`~repro.matching.config.RunConfig`); ``machine`` / ``options``
    / ``faults`` / ``engine`` are conveniences folded into a fresh config
    when no explicit one is passed (mixing the two styles raises).
    ``power`` and ``keep_result`` are measurement-side knobs: they shape
    the returned :class:`RunRecord`, not the simulation, so they combine
    freely with ``config=``. Results are bit-identical across engines.
    """
    cfg = _build_config(config, machine, options, faults, engine)
    res = run_matching(g, nprocs, model=model, config=cfg)
    c = res.counters
    erep = energy_report(model.upper(), res.makespan, c, power)
    return RunRecord(
        graph=label,
        nprocs=nprocs,
        model=model,
        makespan=res.makespan,
        weight=res.weight,
        iterations=res.iterations,
        messages=res.total_messages(),
        bytes_moved=(
            c.p2p.total_bytes() + c.rma.total_bytes() + c.ncl.total_bytes()
        ),
        mem_per_rank_mb=c.avg_peak_memory() / (1024 * 1024),
        energy=erep,
        result=res if keep_result else None,
    )


def run_models(
    g: CSRGraph,
    nprocs: int,
    models: tuple[str, ...] = MODELS,
    **kwargs,
) -> dict[str, RunRecord]:
    """Run several communication models on the same (graph, p)."""
    return {m: run(g, nprocs, m, **kwargs) for m in models}


def sweep(
    points: Sequence[tuple[str, CSRGraph, int]],
    models: Sequence[str] = MODELS,
    *,
    title: str,
    xlabel: str = "processes",
    machine: MachineModel | None = None,
    config: RunConfig | None = None,
) -> "tuple[FigureData, list[RunRecord]]":
    """Run ``models`` over a list of (label, graph, nprocs) points.

    Weak scaling passes a different graph per point; strong scaling passes
    the same graph with growing ``nprocs``. Returns the paper-style
    execution-time figure plus the raw records.
    """
    from repro.harness.figures import FigureData

    records: list[RunRecord] = []
    fig = FigureData(title=title, xlabel=xlabel, ylabel="execution time (s)")
    for model in models:
        xs: list[float] = []
        ys: list[float] = []
        for label, g, p in points:
            rec = run(g, p, model, label=label, machine=machine, config=config)
            records.append(rec)
            xs.append(p)
            ys.append(rec.makespan)
        fig.add(model.upper(), xs, ys)
    return fig, records


def best_speedup_over_baseline(
    records: list[RunRecord], baseline: str = "nsr"
) -> dict[tuple[str, int], tuple[float, str]]:
    """Per (graph, p): best speedup over the baseline and which model won."""
    by_point: dict[tuple[str, int], dict[str, RunRecord]] = {}
    for r in records:
        by_point.setdefault((r.graph, r.nprocs), {})[r.model] = r
    out: dict[tuple[str, int], tuple[float, str]] = {}
    for point, models in by_point.items():
        if baseline not in models:
            continue
        base = models[baseline]
        best_model, best_speedup = baseline, 1.0
        for name, rec in models.items():
            if name == baseline:
                continue
            s = rec.speedup_over(base)
            if s > best_speedup:
                best_model, best_speedup = name, s
        out[point] = (best_speedup, best_model)
    return out


@dataclass
class ProfileRun:
    """One span-profiled run plus its rendered analyses."""

    result: MatchingRunResult
    phase_table: str  #: per-rank phase breakdown (rendered text)
    critical_path: str  #: critical-path walk (rendered text)
    artifacts: list[str]  #: files written into ``out`` (empty without it)


def profile(
    g: CSRGraph,
    nprocs: int,
    model: str,
    *,
    config: RunConfig | None = None,
    machine: MachineModel | None = None,
    out: str | None = None,
) -> ProfileRun:
    """One profiled run: phase breakdown, critical path, artifact bundle.

    ``config`` (if given) is forced to ``profile=True``; ``out`` names a
    directory to receive the full artifact bundle (Chrome trace JSON,
    phase CSVs, comm matrices, Table VIII row — see docs/profiling.md).
    """
    from repro.harness import profiler

    if config is not None and machine is not None:
        raise TypeError("api.profile: cannot mix config= with machine=")
    cfg = (config or RunConfig(machine=machine)).evolve(profile=True)
    res = run_matching(g, nprocs, model=model, config=cfg)
    prof = res.profile
    files: list[str] = []
    if out:
        files = profiler.write_profile_bundle(out, res, model)
    return ProfileRun(
        result=res,
        phase_table=profiler.phase_table(
            prof, title=f"{model}: time per phase (s)"
        ).render(),
        critical_path=profiler.critical_path(prof).render(),
        artifacts=files,
    )


def chaos(
    g: CSRGraph,
    nprocs: int,
    *,
    backends: tuple[str, ...] = ("nsr", "rma", "ncl"),
    plans: int = 30,
    seed: int = 1,
    mode: str = "faults",
    max_ops: int | None = 2_000_000,
    spares: int = 16,
    replicas: int = 2,
    mtbf: float | None = None,
    dataset: str = "?",
    do_shrink: bool = True,
    progress: Callable[[str], None] | None = None,
) -> "ChaosReport":
    """Sample seeded fault plans, verify each run, shrink any failure.

    ``mode`` selects the chaos harness: ``"faults"`` (message/RMA faults,
    crashes, partitions), ``"restart"`` (kill/resume cycles must complete
    bit-identically), or ``"churn"`` (Poisson crash churn under automatic
    rollback-recovery). Crash times and degradation windows are anchored
    to each backend's fault-free makespan, measured here.
    """
    from repro.harness.chaos import (
        churn_matching_runner,
        matching_runner,
        restart_matching_runner,
        run_chaos,
    )

    if mode not in ("faults", "restart", "churn"):
        raise ValueError(f"chaos mode must be faults/restart/churn, got {mode!r}")
    for b in backends:
        if b not in ("nsr", "nsr-agg", "rma", "ncl"):
            raise ValueError(f"chaos supports nsr/nsr-agg/rma/ncl, got {b!r}")
    # Anchor sampled fault times to each backend's actual fault-free
    # makespan so they land mid-algorithm.
    t_scales = {
        b: run_matching(g, nprocs=nprocs, model=b).makespan for b in backends
    }
    if mode == "restart":
        runner = restart_matching_runner(g, nprocs, t_scales, max_ops=max_ops)
    elif mode == "churn":
        runner = churn_matching_runner(
            g, nprocs, t_scales, max_ops=max_ops,
            spares=spares, replicas=replicas,
        )
    else:
        runner = matching_runner(g, nprocs, max_ops=max_ops)
    return run_chaos(
        runner,
        seed=seed,
        plans=plans,
        nprocs=nprocs,
        backends=backends,
        t_scales=t_scales,
        dataset=dataset,
        do_shrink=do_shrink,
        churn=(mode == "churn"),
        churn_mtbf=mtbf,
        progress=progress,
    )
