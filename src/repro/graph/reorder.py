"""Vertex reordering: Reverse Cuthill-McKee and reference permutations.

The paper studies RCM (§V-C) as a bandwidth-minimizing heuristic to make
1D partitions friendlier to neighborhood collectives. We implement RCM
from scratch (George-Liu pseudo-peripheral start, degree-sorted BFS,
reversed), and cross-check it against scipy's implementation in tests.

Permutation convention: ``perm[old_id] = new_id`` everywhere (matching
:meth:`repro.graph.csr.CSRGraph.permuted`).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng


def _bfs_levels(g: CSRGraph, root: int, mask: np.ndarray) -> tuple[list[list[int]], int]:
    """BFS level structure from ``root`` restricted to unvisited vertices."""
    levels = [[root]]
    mask[root] = True
    frontier = [root]
    count = 1
    while True:
        nxt: list[int] = []
        for v in frontier:
            for u in g.neighbors(v):
                u = int(u)
                if not mask[u]:
                    mask[u] = True
                    nxt.append(u)
        if not nxt:
            break
        levels.append(nxt)
        count += len(nxt)
        frontier = nxt
    return levels, count


def pseudo_peripheral_vertex(g: CSRGraph, start: int) -> int:
    """George-Liu: walk to a vertex of (locally) maximal eccentricity."""
    degrees = g.degrees()
    current = start
    best_height = -1
    for _ in range(8):  # converges in a few sweeps in practice
        mask = np.zeros(g.num_vertices, dtype=bool)
        levels, _ = _bfs_levels(g, current, mask)
        height = len(levels)
        if height <= best_height:
            break
        best_height = height
        last = levels[-1]
        current = min(last, key=lambda v: (degrees[v], v))
    return current


def rcm_permutation(g: CSRGraph) -> np.ndarray:
    """Reverse Cuthill-McKee ordering; handles disconnected graphs.

    Components are processed in order of their lowest original id; within
    a component, BFS from a pseudo-peripheral vertex visiting neighbors in
    increasing-degree order, then the whole sequence is reversed.
    """
    n = g.num_vertices
    degrees = g.degrees()
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    for seed in range(n):
        if visited[seed]:
            continue
        root = pseudo_peripheral_vertex(g, seed)
        # Cuthill-McKee BFS.
        comp_mask = np.zeros(n, dtype=bool)
        comp_mask[root] = True
        queue = [root]
        qi = 0
        while qi < len(queue):
            v = queue[qi]
            qi += 1
            order.append(v)
            nbrs = [int(u) for u in g.neighbors(v) if not comp_mask[u]]
            nbrs.sort(key=lambda u: (degrees[u], u))
            for u in nbrs:
                comp_mask[u] = True
                queue.append(u)
        visited |= comp_mask
    order.reverse()
    perm = np.empty(n, dtype=np.int64)
    perm[np.array(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
    return perm


def rcm_reorder(g: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Convenience: RCM-permuted graph plus the permutation used."""
    perm = rcm_permutation(g)
    return g.permuted(perm), perm


def random_permutation(g: CSRGraph, seed: int = 0) -> np.ndarray:
    """Uniformly random relabeling (worst case for locality)."""
    return make_rng(seed, "randperm").permutation(g.num_vertices).astype(np.int64)


def degree_sort_permutation(g: CSRGraph, descending: bool = True) -> np.ndarray:
    """Relabel by degree (high-degree-first groups hubs onto few ranks)."""
    deg = g.degrees()
    order = np.argsort(-deg if descending else deg, kind="stable")
    perm = np.empty(g.num_vertices, dtype=np.int64)
    perm[order] = np.arange(g.num_vertices, dtype=np.int64)
    return perm
