"""Process-graph and ghost-edge statistics (paper Tables III, IV, V, VI).

Notation follows the paper (§V-A):

* ``|Ep|`` — number of edges in the *process graph* (two ranks are
  adjacent iff they share at least one cross edge);
* ``dmax`` / ``davg`` / ``sigma_d`` — max / mean / stddev of process-graph
  node degrees;
* ``|E'|`` — edges augmented with ghost vertices: per rank, internal
  undirected edges plus all incident cross edges (each cross edge is
  counted on both of its ranks, so summing over ranks gives
  ``|E| + #cross``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.distribution import LocalGraph, partition_graph
from repro.util.tables import TextTable, format_si


@dataclass(frozen=True)
class ProcessGraphStats:
    """One row of the paper's Tables III/IV/VI."""

    nprocs: int
    num_edges: int  #: |Ep|
    dmax: int
    davg: float
    sigma_d: float

    def as_row(self) -> list:
        return [
            self.nprocs,
            f"{self.num_edges:.2E}",
            self.dmax,
            f"{self.davg:.2f}",
            f"{self.sigma_d:.2f}",
        ]


@dataclass(frozen=True)
class GhostStats:
    """|E'| block of the paper's Table V."""

    nprocs: int
    total: int  #: sum over ranks of |E'_i|
    max: int
    avg: float
    sigma: float

    def as_row(self) -> list:
        return [
            format_si(self.total),
            format_si(self.max),
            format_si(self.avg),
            format_si(self.sigma),
        ]


def process_graph_stats_from_parts(parts: list[LocalGraph]) -> ProcessGraphStats:
    degrees = np.array([len(p.neighbor_ranks) for p in parts], dtype=np.int64)
    num_edges = int(degrees.sum()) // 2
    return ProcessGraphStats(
        nprocs=len(parts),
        num_edges=num_edges,
        dmax=int(degrees.max()) if len(degrees) else 0,
        davg=float(degrees.mean()) if len(degrees) else 0.0,
        sigma_d=float(degrees.std()) if len(degrees) else 0.0,
    )


def process_graph_stats(g: CSRGraph, nprocs: int) -> ProcessGraphStats:
    return process_graph_stats_from_parts(partition_graph(g, nprocs))


def ghost_stats_from_parts(parts: list[LocalGraph]) -> GhostStats:
    eprime = np.array([p.edges_with_ghosts() for p in parts], dtype=np.int64)
    return GhostStats(
        nprocs=len(parts),
        total=int(eprime.sum()),
        max=int(eprime.max()) if len(eprime) else 0,
        avg=float(eprime.mean()) if len(eprime) else 0.0,
        sigma=float(eprime.std()) if len(eprime) else 0.0,
    )


def ghost_stats(g: CSRGraph, nprocs: int) -> GhostStats:
    return ghost_stats_from_parts(partition_graph(g, nprocs))


def topology_table(
    rows: list[tuple[str, ProcessGraphStats]], title: str
) -> TextTable:
    """Render process-graph stats in the paper's Table III/IV layout."""
    t = TextTable(["input", "p", "|Ep|", "dmax", "davg", "sigma_d"], title=title)
    for label, s in rows:
        t.add_row([label] + s.as_row())
    return t


def ghost_table(rows: list[tuple[str, GhostStats]], title: str) -> TextTable:
    """Render |E'| stats in the paper's Table V layout."""
    t = TextTable(
        ["input", "|E'|", "|E'|max", "|E'|avg", "sigma|E'|"], title=title
    )
    for label, s in rows:
        t.add_row([label] + s.as_row())
    return t
