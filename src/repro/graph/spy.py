"""Spy-plot style density grids for adjacency and communication matrices.

The paper presents adjacency structure (Fig. 7) and communication
matrices (Figs. 2, 9, 11) as images; we render the same data as density
grids — numeric (for assertions and CSV) and ASCII (for humans).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

_SHADES = " .:-=+*#%@"


def adjacency_density(g: CSRGraph, bins: int = 32) -> np.ndarray:
    """(bins x bins) count grid of the adjacency matrix's nonzeros."""
    u, v, _ = g.edge_list()
    n = g.num_vertices
    grid, _, _ = np.histogram2d(
        np.concatenate([u, v]).astype(np.float64),
        np.concatenate([v, u]).astype(np.float64),
        bins=bins,
        range=[[0, n], [0, n]],
    )
    return grid


def render_ascii(grid: np.ndarray, log_scale: bool = True) -> str:
    """Shade a nonnegative grid into ASCII art (darker = denser)."""
    g = np.asarray(grid, dtype=np.float64)
    if log_scale:
        g = np.log1p(g)
    top = g.max()
    if top <= 0:
        return "\n".join(" " * g.shape[1] for _ in range(g.shape[0]))
    levels = np.minimum((g / top * (len(_SHADES) - 1)).astype(int), len(_SHADES) - 1)
    return "\n".join("".join(_SHADES[x] for x in row) for row in levels)


def grid_to_csv(grid: np.ndarray) -> str:
    return "\n".join(",".join(str(int(x)) for x in row) for row in grid) + "\n"


def diagonal_mass_fraction(grid: np.ndarray, width: int = 1) -> float:
    """Fraction of grid mass within ``width`` cells of the diagonal.

    A banded matrix (post-RCM) concentrates mass near the diagonal; this
    scalar is the testable essence of the paper's Fig. 7 contrast.
    """
    n = grid.shape[0]
    total = grid.sum()
    if total <= 0:
        return 0.0
    i, j = np.indices(grid.shape)
    mask = np.abs(i - j) <= width
    return float(grid[mask].sum() / total)
