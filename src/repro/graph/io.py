"""Graph I/O: Matrix Market, plain edge lists, and fast NPZ snapshots.

MatrixMarket covers interchange with SuiteSparse-style tooling (the
paper's real-world inputs are SuiteSparse matrices); NPZ is the fast
native round-trip used by the benchmark harness's graph cache.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph, from_edges


def write_matrix_market(g: CSRGraph, path: str | Path) -> None:
    """Write as a 1-based symmetric coordinate real MatrixMarket file."""
    u, v, w = g.edge_list()
    buf = _io.StringIO()
    buf.write("%%MatrixMarket matrix coordinate real symmetric\n")
    buf.write(f"% written by repro.graph.io\n")
    n = g.num_vertices
    buf.write(f"{n} {n} {len(u)}\n")
    for a, b, ww in zip(u, v, w):
        # symmetric MM stores the lower triangle: row >= col
        buf.write(f"{int(b) + 1} {int(a) + 1} {ww:.17g}\n")
    Path(path).write_text(buf.getvalue())


def read_matrix_market(path: str | Path) -> CSRGraph:
    """Read a symmetric coordinate MatrixMarket file (pattern or real)."""
    lines = Path(path).read_text().splitlines()
    if not lines or not lines[0].startswith("%%MatrixMarket"):
        raise ValueError("not a MatrixMarket file")
    header = lines[0].lower().split()
    pattern = "pattern" in header
    body = [ln for ln in lines[1:] if ln and not ln.startswith("%")]
    dims = body[0].split()
    n = int(dims[0])
    us, vs, ws = [], [], []
    for ln in body[1:]:
        parts = ln.split()
        r, c = int(parts[0]) - 1, int(parts[1]) - 1
        if r == c:
            continue  # drop diagonal
        us.append(r)
        vs.append(c)
        ws.append(1.0 if pattern else float(parts[2]))
    return from_edges(
        n,
        np.array(us, dtype=np.int64),
        np.array(vs, dtype=np.int64),
        np.array(ws, dtype=np.float64),
    )


def write_edge_list(g: CSRGraph, path: str | Path, weights: bool = True) -> None:
    """Plain whitespace 0-based edge list, one undirected edge per line."""
    u, v, w = g.edge_list()
    with open(path, "w") as f:
        for a, b, ww in zip(u, v, w):
            if weights:
                f.write(f"{int(a)} {int(b)} {ww:.17g}\n")
            else:
                f.write(f"{int(a)} {int(b)}\n")


def read_edge_list(path: str | Path, num_vertices: int | None = None) -> CSRGraph:
    us, vs, ws = [], [], []
    for ln in Path(path).read_text().splitlines():
        parts = ln.split()
        if not parts or parts[0].startswith("#"):
            continue
        us.append(int(parts[0]))
        vs.append(int(parts[1]))
        ws.append(float(parts[2]) if len(parts) > 2 else 1.0)
    u = np.array(us, dtype=np.int64)
    v = np.array(vs, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(max(u.max(initial=-1), v.max(initial=-1)) + 1)
    return from_edges(num_vertices, u, v, np.array(ws, dtype=np.float64))


def save_npz(g: CSRGraph, path: str | Path) -> None:
    """Lossless binary snapshot (fast cache format)."""
    np.savez_compressed(path, xadj=g.xadj, adjncy=g.adjncy, weights=g.weights)


def load_npz(path: str | Path) -> CSRGraph:
    data = np.load(path)
    return CSRGraph(
        xadj=data["xadj"], adjncy=data["adjncy"], weights=data["weights"]
    )
