"""`repro.graph` — graph substrate: CSR storage, generators for every
input family in the paper's Table II, 1D block distribution with ghost
vertices, RCM reordering, and the partition/topology statistics behind
Tables III-VI and Figs. 7-9."""

from repro.graph.bandwidth import BandwidthStats, bandwidth_reduction, bandwidth_stats
from repro.graph.build import assign_weights, build_graph, dedupe_edges, hash_jitter
from repro.graph.csr import CSRGraph, from_edges, from_scipy, to_networkx
from repro.graph.distribution import (
    BlockDistribution,
    LocalGraph,
    edge_balanced_distribution,
    partition_graph,
    process_graph_adjacency,
)
from repro.graph.partition_stats import (
    GhostStats,
    ProcessGraphStats,
    ghost_stats,
    ghost_stats_from_parts,
    ghost_table,
    process_graph_stats,
    process_graph_stats_from_parts,
    topology_table,
)
from repro.graph.reorder import (
    degree_sort_permutation,
    random_permutation,
    rcm_permutation,
    rcm_reorder,
)
from repro.graph.spy import (
    adjacency_density,
    diagonal_mass_fraction,
    grid_to_csv,
    render_ascii,
)

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_scipy",
    "to_networkx",
    "build_graph",
    "dedupe_edges",
    "assign_weights",
    "hash_jitter",
    "BlockDistribution",
    "LocalGraph",
    "partition_graph",
    "edge_balanced_distribution",
    "process_graph_adjacency",
    "rcm_permutation",
    "rcm_reorder",
    "random_permutation",
    "degree_sort_permutation",
    "BandwidthStats",
    "bandwidth_stats",
    "bandwidth_reduction",
    "ProcessGraphStats",
    "GhostStats",
    "process_graph_stats",
    "process_graph_stats_from_parts",
    "ghost_stats",
    "ghost_stats_from_parts",
    "topology_table",
    "ghost_table",
    "adjacency_density",
    "render_ascii",
    "grid_to_csv",
    "diagonal_mass_fraction",
]
