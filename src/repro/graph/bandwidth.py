"""Matrix bandwidth and envelope metrics for the reordering study.

RCM's objective is bandwidth reduction; these metrics quantify what the
paper's Fig. 7 spy plots show visually.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class BandwidthStats:
    bandwidth: int  #: max |u - v| over edges
    avg_band: float  #: mean |u - v| over edges
    profile: int  #: envelope: sum over rows of (row index - min col index)

    def as_row(self) -> list:
        return [self.bandwidth, f"{self.avg_band:.1f}", self.profile]


def bandwidth_stats(g: CSRGraph) -> BandwidthStats:
    u, v, _ = g.edge_list()
    if len(u) == 0:
        return BandwidthStats(0, 0.0, 0)
    span = np.abs(u - v)
    # Envelope over rows of the symmetric adjacency matrix.
    n = g.num_vertices
    min_col = np.arange(n, dtype=np.int64)
    np.minimum.at(min_col, u, v)
    np.minimum.at(min_col, v, u)
    profile = int((np.arange(n, dtype=np.int64) - min_col).sum())
    return BandwidthStats(int(span.max()), float(span.mean()), profile)


def bandwidth_reduction(original: CSRGraph, reordered: CSRGraph) -> float:
    """Fraction by which the bandwidth dropped (1.0 = eliminated)."""
    b0 = bandwidth_stats(original).bandwidth
    b1 = bandwidth_stats(reordered).bandwidth
    if b0 == 0:
        return 0.0
    return 1.0 - b1 / b0
