"""Power-law social-network proxies for Orkut and Friendster.

Chung-Lu style sampling: each vertex draws a weight from a truncated
power law and edges are sampled proportional to weight products. Social
networks under 1D block distribution give near-complete process graphs
(the paper's Table IV: davg within 1% of p-1), which is why NCL/RMA
scalability degrades at high process counts on these inputs (Fig. 6).
Vertex ids are shuffled, matching the arbitrary crawl order of the
published SNAP datasets.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import build_graph
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng


def powerlaw_graph(
    n: int,
    avg_degree: float = 30.0,
    exponent: float = 2.4,
    max_degree_fraction: float = 0.05,
    *,
    seed: int = 0,
    weight_scheme: str = "uniform",
    distinct_weights: bool = True,
) -> CSRGraph:
    """Chung-Lu graph with degree exponent ``exponent``."""
    if n < 16:
        raise ValueError("need n >= 16")
    rng = make_rng(seed, "powerlaw")
    m = int(n * avg_degree / 2)
    # Truncated Pareto vertex propensities.
    w = 1.0 + rng.pareto(exponent - 1.0, size=n)
    w = np.minimum(w, max(2.0, max_degree_fraction * n))
    probs = w / w.sum()
    u = rng.choice(n, size=m, p=probs).astype(np.int64)
    v = rng.choice(n, size=m, p=probs).astype(np.int64)
    perm = rng.permutation(n).astype(np.int64)
    u, v = perm[u], perm[v]
    return build_graph(n, u, v, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)


def orkut_proxy(n: int = 20_000, *, seed: int = 0, **overrides) -> CSRGraph:
    """Orkut-shaped proxy: dense social graph (|E|/|V| ~ 39 in the paper).

    Scaled down from 3M vertices; the communication-relevant property —
    a near-complete process graph under 1D partitioning — is preserved.
    """
    kwargs = dict(avg_degree=38.0, exponent=2.4)
    kwargs.update(overrides)
    return powerlaw_graph(n, seed=seed, **kwargs)


def friendster_proxy(n: int = 48_000, *, seed: int = 0, **overrides) -> CSRGraph:
    """Friendster-shaped proxy: sparser per-vertex (|E|/|V| ~ 27) but the
    largest input overall, with a heavier tail than Orkut."""
    kwargs = dict(avg_degree=27.0, exponent=2.2)
    kwargs.update(overrides)
    return powerlaw_graph(n, seed=seed, **kwargs)
