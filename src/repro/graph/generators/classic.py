"""Classic deterministic graph families (paths, grids, stars, ...).

Paths and grids with ordered vertex numbering are the paper's pathological
inputs for uniform-weight matching (§III); they double as structural test
fixtures throughout the suite.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import build_graph
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng


def path_graph(n: int, *, seed: int = 0, weight_scheme: str = "uniform",
               distinct_weights: bool = True) -> CSRGraph:
    """Path 0-1-2-...-(n-1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    u = np.arange(n - 1, dtype=np.int64)
    return build_graph(n, u, u + 1, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)


def cycle_graph(n: int, *, seed: int = 0, weight_scheme: str = "uniform",
                distinct_weights: bool = True) -> CSRGraph:
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return build_graph(n, u, v, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)


def grid2d_graph(rows: int, cols: int, *, seed: int = 0,
                 weight_scheme: str = "uniform",
                 distinct_weights: bool = True) -> CSRGraph:
    """rows x cols 4-neighbor grid, row-major vertex numbering."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dims must be >= 1")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    us = [ids[:, :-1].ravel(), ids[:-1, :].ravel()]
    vs = [ids[:, 1:].ravel(), ids[1:, :].ravel()]
    u = np.concatenate(us)
    v = np.concatenate(vs)
    return build_graph(rows * cols, u, v, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)


def star_graph(n: int, *, seed: int = 0, weight_scheme: str = "uniform",
               distinct_weights: bool = True) -> CSRGraph:
    """Center vertex 0 connected to all others (extreme degree skew)."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    v = np.arange(1, n, dtype=np.int64)
    u = np.zeros(n - 1, dtype=np.int64)
    return build_graph(n, u, v, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)


def complete_graph(n: int, *, seed: int = 0, weight_scheme: str = "uniform",
                   distinct_weights: bool = True) -> CSRGraph:
    if n < 2:
        raise ValueError("complete graph needs n >= 2")
    iu = np.triu_indices(n, k=1)
    return build_graph(n, iu[0].astype(np.int64), iu[1].astype(np.int64),
                       seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)


def erdos_renyi(n: int, avg_degree: float, *, seed: int = 0,
                weight_scheme: str = "uniform",
                distinct_weights: bool = True) -> CSRGraph:
    """G(n, m) random graph with m = n * avg_degree / 2 sampled edges."""
    if n < 2:
        raise ValueError("need n >= 2")
    rng = make_rng(seed, "erdos")
    m = int(n * avg_degree / 2)
    u = rng.integers(0, n, size=m, dtype=np.int64)
    v = rng.integers(0, n, size=m, dtype=np.int64)
    return build_graph(n, u, v, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)
