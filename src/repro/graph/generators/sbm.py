"""Degree-corrected stochastic block partition graphs (MIT GraphChallenge).

The paper's "stochastic block partitioned graphs — high overlap, low block
sizes (HILO)" come from the GraphChallenge static-partition datasets. The
defining properties for communication behaviour are:

* many small blocks ("low block sizes"),
* a large fraction of edges crossing blocks ("high overlap"),
* power-law-ish degree correction within blocks.

Under a 1D vertex-block distribution these graphs induce a near-complete
process graph (the paper's Table III: dmax = davg = p-1), which is the
regime where blocking neighborhood collectives lose to Send-Recv
(Fig. 4c). Block membership is assigned by interleaving (vertex i is in
block i mod B) so cross-block edges scatter across all ranks, mirroring
the unsorted vertex numbering of the published datasets.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import build_graph
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng


def sbm_hilo_graph(
    n: int,
    avg_degree: float = 24.0,
    num_blocks: int | None = None,
    overlap: float = 0.6,
    degree_exponent: float = 2.9,
    *,
    seed: int = 0,
    weight_scheme: str = "uniform",
    distinct_weights: bool = True,
) -> CSRGraph:
    """Generate a HILO-style degree-corrected SBM graph.

    ``overlap`` is the fraction of edges whose endpoints lie in different
    blocks ("high overlap" ~0.5-0.7). ``num_blocks`` defaults to
    ``max(8, n // 256)`` ("low block sizes": a few hundred vertices each).
    """
    if n < 16:
        raise ValueError("need n >= 16")
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")
    if num_blocks is None:
        num_blocks = max(8, n // 256)
    num_blocks = min(num_blocks, n)
    rng = make_rng(seed, "sbm")
    m = int(n * avg_degree / 2)

    # Interleaved block membership: vertex i -> block i % B. Per-vertex
    # degree propensity theta ~ Pareto(alpha-1), normalized per block.
    block_of = np.arange(n, dtype=np.int64) % num_blocks
    theta = (1.0 + rng.pareto(degree_exponent - 1.0, size=n))

    # Organize vertices by block for propensity-weighted sampling.
    order = np.argsort(block_of, kind="stable")
    sorted_theta = theta[order]
    block_starts = np.searchsorted(block_of[order], np.arange(num_blocks + 1))

    def sample_in_block(blocks: np.ndarray) -> np.ndarray:
        """Propensity-weighted vertex choice inside each given block."""
        out = np.empty(len(blocks), dtype=np.int64)
        for b in np.unique(blocks):
            sel = blocks == b
            lo, hi = block_starts[b], block_starts[b + 1]
            w = sorted_theta[lo:hi]
            probs = w / w.sum()
            idx = rng.choice(hi - lo, size=int(sel.sum()), p=probs)
            out[sel] = order[lo + idx]
        return out

    cross = rng.uniform(size=m) < overlap
    b1 = rng.integers(0, num_blocks, size=m)
    shift = rng.integers(1, max(2, num_blocks), size=m)
    b2 = np.where(cross, (b1 + shift) % num_blocks, b1)
    u = sample_in_block(b1)
    v = sample_in_block(b2)
    return build_graph(n, u, v, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)
