"""Protein k-mer graph proxies (V2a / U1a / P1a / V1r shapes).

The paper describes the k-mer graphs' structure directly: "The structure
of k-mer graphs consists of grids of different sizes; when the grids are
densely packed, it affects the performance of neighborhood collectives"
(§V-B). We generate exactly that: a compound of many 2D grid components
with a given size distribution, plus a sparse set of bridge edges linking
consecutive components, with a ``packing`` knob that controls how much the
components' vertex-id ranges interleave (densely packed numbering spreads
each component across more ranks, inflating process-graph degree).
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import build_graph
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng


def kmer_graph(
    n: int,
    *,
    grid_min: int = 4,
    grid_max: int = 40,
    packing: float = 0.0,
    bridge_fraction: float = 0.02,
    seed: int = 0,
    weight_scheme: str = "uniform",
    distinct_weights: bool = True,
) -> CSRGraph:
    """Generate a k-mer-like grid-compound graph on ~``n`` vertices.

    ``packing`` in [0, 1]: 0 keeps each grid's vertices contiguous in the
    numbering (each component touches few ranks); 1 fully scrambles
    vertex ids (every component straddles many ranks — "densely packed").
    """
    if n < grid_min * grid_min:
        raise ValueError("n too small for the smallest grid")
    if not 0.0 <= packing <= 1.0:
        raise ValueError("packing must be in [0, 1]")
    rng = make_rng(seed, "kmer")

    # Carve n vertices into grid components of random aspect.
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    base = 0
    comp_firsts: list[int] = []
    while base + grid_min * grid_min <= n:
        rows = int(rng.integers(grid_min, grid_max + 1))
        cols = int(rng.integers(grid_min, grid_max + 1))
        size = rows * cols
        if base + size > n:
            size = n - base
            cols = max(2, size // max(2, rows))
            rows = size // cols
            size = rows * cols
            if rows < 2 or cols < 2:
                break
        ids = (base + np.arange(rows * cols, dtype=np.int64)).reshape(rows, cols)
        us.append(ids[:, :-1].ravel())
        vs.append(ids[:, 1:].ravel())
        us.append(ids[:-1, :].ravel())
        vs.append(ids[1:, :].ravel())
        comp_firsts.append(base)
        base += rows * cols
    u = np.concatenate(us)
    v = np.concatenate(vs)

    # Sparse bridges between consecutive components (keeps the compound
    # loosely connected, as overlapping k-mers do).
    if len(comp_firsts) > 1 and bridge_fraction > 0.0:
        k = max(1, int(len(comp_firsts) * bridge_fraction * 10))
        c1 = rng.integers(0, len(comp_firsts) - 1, size=k)
        bu = np.array([comp_firsts[i] for i in c1], dtype=np.int64)
        bv = np.array([comp_firsts[i + 1] for i in c1], dtype=np.int64)
        u = np.concatenate([u, bu])
        v = np.concatenate([v, bv])

    # Packing: swap a fraction of vertex ids with random partners.
    if packing > 0.0:
        perm = np.arange(n, dtype=np.int64)
        nswap = int(packing * n)
        a = rng.integers(0, n, size=nswap)
        b = rng.integers(0, n, size=nswap)
        for i, j in zip(a, b):
            perm[i], perm[j] = perm[j], perm[i]
        u, v = perm[u], perm[v]

    return build_graph(n, u, v, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)


#: Shape presets mirroring the paper's four protein k-mer instances.
#: (relative size, grid span, packing) — V1r is the largest and most
#: densely packed, V2a the smallest and loosest, matching the relative
#: |E| ordering of Table II and the scaling behaviour of Fig. 5.
KMER_PRESETS: dict[str, dict] = {
    "V2a": {"grid_min": 4, "grid_max": 24, "packing": 0.05},
    "U1a": {"grid_min": 4, "grid_max": 28, "packing": 0.12},
    "P1a": {"grid_min": 6, "grid_max": 36, "packing": 0.25},
    "V1r": {"grid_min": 6, "grid_max": 44, "packing": 0.45},
}


def kmer_preset_graph(name: str, n: int, *, seed: int = 0, **overrides) -> CSRGraph:
    """Generate one of the named k-mer proxies at ``n`` vertices."""
    if name not in KMER_PRESETS:
        raise KeyError(f"unknown k-mer preset {name!r}; have {sorted(KMER_PRESETS)}")
    kwargs = dict(KMER_PRESETS[name])
    kwargs.update(overrides)
    return kmer_graph(n, seed=seed, **kwargs)
