"""Graph500-style R-MAT (Recursive MATrix) graph generator.

Uses the Graph500 parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) and
edgefactor 16 by default, matching the paper's "Graph500 R-MAT Scale N"
inputs. Edge endpoints are sampled bit-by-bit down the recursive 2x2
partition, fully vectorized across edges; the per-level noise follows the
Graph500 reference implementation's "smoothing" so degree skew does not
collapse onto a single vertex.

Vertex ids are randomly permuted by default (as Graph500 requires) so
structure does not leak into the 1D block distribution.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import build_graph
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng

GRAPH500_PARAMS = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    edgefactor: int = 16,
    params: tuple[float, float, float, float] = GRAPH500_PARAMS,
    *,
    seed: int = 0,
    noise: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample raw (possibly duplicate) R-MAT endpoint arrays."""
    a, b, c, d = params
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("R-MAT probabilities must sum to 1")
    n = 1 << scale
    m = n * edgefactor
    rng = make_rng(seed, "rmat", scale)
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    ab = a + b
    a_norm = a / ab if ab > 0 else 0.5
    c_norm = c / (c + d) if (c + d) > 0 else 0.5
    for level in range(scale):
        # Per-level multiplicative noise (Graph500 smoothing).
        jitter = 1.0 + noise * (rng.uniform(-1.0, 1.0, size=m))
        ab_l = np.clip(ab * jitter, 0.0, 1.0)
        go_down = rng.uniform(size=m) > ab_l  # row bit (u side)
        right_prob = np.where(go_down, c_norm, a_norm)
        jitter2 = 1.0 + noise * (rng.uniform(-1.0, 1.0, size=m))
        go_right = rng.uniform(size=m) > np.clip(right_prob * jitter2, 0.0, 1.0)
        bit = np.int64(1) << np.int64(scale - 1 - level)
        u += bit * go_down
        v += bit * go_right
    return u, v


def rmat_graph(
    scale: int,
    edgefactor: int = 16,
    params: tuple[float, float, float, float] = GRAPH500_PARAMS,
    *,
    seed: int = 0,
    shuffle: bool = True,
    weight_scheme: str = "uniform",
    distinct_weights: bool = True,
) -> CSRGraph:
    """Generate the deduplicated undirected R-MAT graph of ``2**scale``
    vertices and up to ``edgefactor * 2**scale`` edges."""
    n = 1 << scale
    u, v = rmat_edges(scale, edgefactor, params, seed=seed)
    if shuffle:
        perm = make_rng(seed, "rmat-perm", scale).permutation(n).astype(np.int64)
        u, v = perm[u], perm[v]
    return build_graph(n, u, v, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)
