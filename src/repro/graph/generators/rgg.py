"""Random geometric graphs (RGG) with a distribution-friendly numbering.

The paper's distributed RGG generator guarantees that, under the 1D
vertex-block distribution, each process communicates with **at most two
neighboring processes** (§V-B): points live in a unit square cut into
horizontal strips, one strip per process, and the radius is small enough
that edges only cross adjacent strips.

We reproduce that property by sorting vertices by their y coordinate
before numbering them: a block of consecutive vertex ids then corresponds
to a horizontal band, and edges (length <= radius) connect only adjacent
bands, so the process graph is a path — the best case for neighborhood
collectives, which is exactly why the paper's Fig. 4a shows the largest
NCL wins.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.graph.build import build_graph
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng


def rgg_graph(
    n: int,
    radius: float | None = None,
    *,
    seed: int = 0,
    target_avg_degree: float | None = None,
    weight_scheme: str = "uniform",
    distinct_weights: bool = True,
) -> CSRGraph:
    """Generate an RGG on ``n`` points in the unit square.

    Exactly one of ``radius`` / ``target_avg_degree`` may be given; with
    neither, the radius defaults to the connectivity-threshold scaling
    ``sqrt(2 * ln(n) / (pi * n))``.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if radius is not None and target_avg_degree is not None:
        raise ValueError("give either radius or target_avg_degree, not both")
    if radius is None:
        if target_avg_degree is not None:
            # E[deg] ~ n * pi * r^2 for points in the unit square
            radius = float(np.sqrt(target_avg_degree / (np.pi * n)))
        else:
            radius = float(np.sqrt(2.0 * np.log(max(n, 3)) / (np.pi * n)))
    rng = make_rng(seed, "rgg")
    pts = rng.uniform(0.0, 1.0, size=(n, 2))
    # Number vertices bottom-to-top: consecutive ids = horizontal band.
    order = np.argsort(pts[:, 1], kind="stable")
    pts = pts[order]
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if len(pairs) == 0:
        pairs = np.empty((0, 2), dtype=np.int64)
    u = pairs[:, 0].astype(np.int64)
    v = pairs[:, 1].astype(np.int64)
    return build_graph(n, u, v, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)
