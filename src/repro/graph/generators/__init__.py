"""Graph generators for every input family in the paper's Table II.

| Paper family                     | Generator                         |
|----------------------------------|-----------------------------------|
| Random geometric graphs (RGG)    | :func:`rgg_graph`                 |
| Graph500 R-MAT                   | :func:`rmat_graph`                |
| Stochastic block partition HILO  | :func:`sbm_hilo_graph`            |
| Protein k-mer (V2a/U1a/P1a/V1r)  | :func:`kmer_preset_graph`         |
| DNA (Cage15)                     | :func:`cage15_proxy`              |
| CFD (HV15R)                      | :func:`hv15r_proxy`               |
| Social (Orkut / Friendster)      | :func:`orkut_proxy` / :func:`friendster_proxy` |
| Pathological / fixtures          | :mod:`repro.graph.generators.classic` |
"""

from repro.graph.generators.classic import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid2d_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators.kmer import KMER_PRESETS, kmer_graph, kmer_preset_graph
from repro.graph.generators.matrices import (
    banded_block_graph,
    cage15_proxy,
    hv15r_proxy,
)
from repro.graph.generators.rgg import rgg_graph
from repro.graph.generators.rmat import GRAPH500_PARAMS, rmat_edges, rmat_graph
from repro.graph.generators.sbm import sbm_hilo_graph
from repro.graph.generators.social import friendster_proxy, orkut_proxy, powerlaw_graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "grid2d_graph",
    "star_graph",
    "complete_graph",
    "erdos_renyi",
    "rgg_graph",
    "rmat_graph",
    "rmat_edges",
    "GRAPH500_PARAMS",
    "sbm_hilo_graph",
    "kmer_graph",
    "kmer_preset_graph",
    "KMER_PRESETS",
    "banded_block_graph",
    "cage15_proxy",
    "hv15r_proxy",
    "powerlaw_graph",
    "orkut_proxy",
    "friendster_proxy",
]
