"""Sparse-matrix-shaped proxies for the paper's Cage15 and HV15R inputs.

Cage15 (DNA electrophoresis) and HV15R (CFD) are SuiteSparse matrices
whose natural orderings are structured but suboptimal. The reordering
study (§V-C, Figs. 7-9, Tables V-VI) rests on four properties that the
proxy must reproduce:

1. the original ordering has a wide band that RCM tightens (Fig. 7);
2. the original 1D partition is *imbalanced* — per-rank ghost-edge counts
   |E'_i| vary strongly — and RCM's level-set ordering mixes regions,
   cutting sigma(|E'|) by tens of percent (Table V);
3. RCM slightly increases total cross edges / communication volume under
   naive 1D re-partitioning (Table V, Fig. 9);
4. consequently NSR slows down on the reordered graph while NCL (whose
   blocking collectives are bound by the most-loaded neighborhood) gains
   from the balance (Fig. 8).

The generator is a **comb mesh**: several long strip meshes ("branches")
of *different densities*, joined by a spine. Vertices are numbered
branch-by-branch, row-major within a branch — so the natural band is wide
(one grid step jumps a whole row of columns) and each rank's block sits
inside a single branch (dense branches make overloaded ranks). RCM
flood-fills from the spine through all branches at once: its level sets
interleave dense and sparse branches, which simultaneously narrows the
band and balances per-rank load — exactly the paper's mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import build_graph
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng


def comb_mesh_graph(
    n: int,
    branches: int = 4,
    width: int = 10,
    density: tuple[float, ...] | None = None,
    extra_degree: float = 6.0,
    local_span: int = 3,
    skip_degree: float = 0.8,
    skip_span: tuple[int, int] = (12, 48),
    long_range_fraction: float = 0.0006,
    *,
    seed: int = 0,
    weight_scheme: str = "uniform",
    distinct_weights: bool = True,
) -> CSRGraph:
    """Comb of ``branches`` strip meshes with per-branch edge density.

    ``density[b]`` scales branch b's extra (non-grid) edges; ``extra_degree``
    is the average extra degree across branches; ``local_span`` bounds the
    column distance of extra edges (keeps them band-local).

    ``skip_degree`` adds same-row edges skipping ``skip_span`` columns:
    these are *local* under the natural ordering (a few dozen ids apart)
    but span several RCM level-blocks — the edges responsible for RCM
    *increasing* ghost counts and roughly doubling the process-graph
    degree (paper Tables V-VI).
    """
    if branches < 1 or width < 2:
        raise ValueError("need branches >= 1 and width >= 2")
    cols = n // (branches * width)
    if cols < 4:
        raise ValueError("n too small for this branches/width combination")
    n_used = branches * width * cols
    rng = make_rng(seed, "comb")
    if density is None:
        # Spread densities over ~5x so the original partition is imbalanced.
        density = tuple(0.4 + 2.4 * b / max(1, branches - 1) for b in range(branches))
    if len(density) != branches:
        raise ValueError("density must have one entry per branch")

    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for b in range(branches):
        base = b * width * cols
        ids = base + (
            np.arange(width * cols, dtype=np.int64).reshape(width, cols)
        )
        # Grid edges (row-major numbering: vertical steps span `cols` ids —
        # the wide natural band RCM will tighten).
        us += [ids[:, :-1].ravel(), ids[:-1, :].ravel()]
        vs += [ids[:, 1:].ravel(), ids[1:, :].ravel()]
        # Extra band-local edges, scaled by the branch density. Row-local
        # (|dr| <= 1) so they stay within a rank under both orderings and
        # purely carry the density imbalance.
        k = int(width * cols * extra_degree * density[b] / (2.0 * np.mean(density)))
        if k > 0:
            r1 = rng.integers(0, width, size=k)
            r2 = np.clip(r1 + rng.integers(-1, 2, size=k), 0, width - 1)
            c1 = rng.integers(0, cols, size=k)
            dc = rng.integers(-local_span, local_span + 1, size=k)
            c2 = np.clip(c1 + dc, 0, cols - 1)
            us.append(base + r1 * cols + c1)
            vs.append(base + r2 * cols + c2)
        # Column-skip edges: same row, a few dozen columns apart.
        ks = int(width * cols * skip_degree / 2.0)
        if ks > 0:
            r = rng.integers(0, width, size=ks)
            c1 = rng.integers(0, cols, size=ks)
            dc = rng.integers(skip_span[0], skip_span[1] + 1, size=ks)
            c2 = np.minimum(c1 + dc, cols - 1)
            us.append(base + r * cols + c1)
            vs.append(base + r * cols + c2)

    # Spine: tie branch b's column-0 boundary to branch b+1's, so RCM's
    # BFS reaches every branch within `width` levels of the root.
    for b in range(branches - 1):
        lo = b * width * cols
        hi = (b + 1) * width * cols
        rows = np.arange(width, dtype=np.int64)
        us.append(lo + rows * cols)  # column 0 of branch b
        vs.append(hi + rows * cols)  # column 0 of branch b+1

    u = np.concatenate(us)
    v = np.concatenate(vs)

    # A pinch of unstructured long-range coupling (real matrices are not
    # perfectly banded; also keeps the process graph from degenerating to
    # an exact path).
    m_lr = max(1, int(len(u) * long_range_fraction))
    u = np.concatenate([u, rng.integers(0, n_used, size=m_lr, dtype=np.int64)])
    v = np.concatenate([v, rng.integers(0, n_used, size=m_lr, dtype=np.int64)])

    return build_graph(n_used, u, v, seed=seed, weight_scheme=weight_scheme,
                       distinct_weights=distinct_weights)


# Backwards-friendly alias used in earlier drafts and docs.
banded_block_graph = comb_mesh_graph


def cage15_proxy(n: int = 12_000, *, seed: int = 0, **overrides) -> CSRGraph:
    """Cage15-shaped proxy (paper: 5.15M vertices, 99M edges, |E|/|V|~19)."""
    kwargs = dict(branches=4, width=10, extra_degree=14.0, local_span=3,
                  skip_degree=1.0, skip_span=(20, 80),
                  long_range_fraction=0.0001)
    kwargs.update(overrides)
    return comb_mesh_graph(n, seed=seed, **kwargs)


def hv15r_proxy(n: int = 6_000, *, seed: int = 0, **overrides) -> CSRGraph:
    """HV15R-shaped proxy (paper: 2M vertices, 283M edges, |E|/|V|~140).

    Much denser rows than Cage15 (CFD stencil blocks); density is scaled
    down with size but the contrast with Cage15 is kept.
    """
    kwargs = dict(branches=5, width=8, extra_degree=40.0, local_span=2,
                  skip_degree=0.5, skip_span=(12, 36),
                  long_range_fraction=0.0001)
    kwargs.update(overrides)
    return comb_mesh_graph(n, seed=seed, **kwargs)
