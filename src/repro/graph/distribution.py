"""1D vertex-block distribution with ghost vertices (paper §IV-A).

Each rank owns a contiguous block of vertex ids and *all* edges incident
on them; an edge {u, v} whose endpoints live on different ranks is stored
on both (the remote endpoint is a "ghost"). The undirected process graph
connects two ranks iff they share at least one cross edge; its structure
(degree distribution, Tables III-VI) governs the behaviour of every
communication model studied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


class BlockDistribution:
    """Contiguous block mapping of vertex ids to ranks.

    By default blocks are *vertex-balanced*: the first ``n % p`` ranks
    receive ``n // p + 1`` vertices, the rest ``n // p``. Arbitrary
    contiguous boundaries may be supplied via ``starts`` (see
    :func:`edge_balanced_distribution` for the degree-aware variant the
    paper's conclusion conjectures about).
    """

    def __init__(
        self,
        num_vertices: int,
        nprocs: int,
        starts: np.ndarray | None = None,
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if num_vertices < nprocs:
            raise ValueError(
                f"need at least one vertex per rank ({num_vertices} < {nprocs})"
            )
        self.num_vertices = num_vertices
        self.nprocs = nprocs
        if starts is None:
            base, rem = divmod(num_vertices, nprocs)
            counts = np.full(nprocs, base, dtype=np.int64)
            counts[:rem] += 1
            self._starts = np.zeros(nprocs + 1, dtype=np.int64)
            np.cumsum(counts, out=self._starts[1:])
        else:
            starts = np.asarray(starts, dtype=np.int64)
            if starts.shape != (nprocs + 1,):
                raise ValueError(f"starts must have length nprocs+1 = {nprocs + 1}")
            if starts[0] != 0 or starts[-1] != num_vertices:
                raise ValueError("starts must span [0, num_vertices]")
            if np.any(np.diff(starts) < 1):
                raise ValueError("every rank must own at least one vertex")
            self._starts = starts.copy()

    def range_of(self, rank: int) -> tuple[int, int]:
        """Half-open global-id range [lo, hi) owned by ``rank``."""
        return int(self._starts[rank]), int(self._starts[rank + 1])

    def local_count(self, rank: int) -> int:
        lo, hi = self.range_of(rank)
        return hi - lo

    def owner(self, v: int) -> int:
        """Owning rank of global vertex ``v`` (O(log p))."""
        return int(np.searchsorted(self._starts, v, side="right") - 1)

    def owner_array(self, vs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""
        return (np.searchsorted(self._starts, vs, side="right") - 1).astype(np.int64)

    @property
    def starts(self) -> np.ndarray:
        return self._starts


@dataclass(frozen=True)
class LocalGraph:
    """One rank's partition: owned rows of the CSR plus ghost metadata.

    Row data is a zero-copy view into the global CSR (`adjncy` keeps
    *global* neighbor ids; ownership tests go through the distribution).
    """

    rank: int
    dist: BlockDistribution
    lo: int  #: first owned global vertex id
    hi: int  #: one past the last owned global vertex id
    xadj: np.ndarray  #: local offsets, length (hi - lo + 1), starting at 0
    adjncy: np.ndarray  #: global neighbor ids of owned vertices
    weights: np.ndarray
    ghost_counts: dict[int, int]  #: neighbor rank -> number of cross edges

    @property
    def num_owned(self) -> int:
        return self.hi - self.lo

    @property
    def neighbor_ranks(self) -> list[int]:
        return sorted(self.ghost_counts)

    @property
    def num_cross_edges(self) -> int:
        return sum(self.ghost_counts.values())

    @property
    def num_local_directed_edges(self) -> int:
        return len(self.adjncy)

    def owns(self, v: int) -> bool:
        return self.lo <= v < self.hi

    def row(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor ids, weights) of owned global vertex ``v``."""
        i = v - self.lo
        s, e = self.xadj[i], self.xadj[i + 1]
        return self.adjncy[s:e], self.weights[s:e]

    def memory_bytes(self) -> int:
        return int(self.xadj.nbytes + self.adjncy.nbytes + self.weights.nbytes)

    def edges_with_ghosts(self) -> int:
        """|E'_i|: undirected edges stored on this rank (internal edges
        once, cross edges once each — they also appear on the peer)."""
        owners = self.dist.owner_array(self.adjncy)
        internal_directed = int(np.count_nonzero(owners == self.rank))
        return internal_directed // 2 + self.num_cross_edges


def edge_balanced_distribution(g: CSRGraph, nprocs: int) -> BlockDistribution:
    """Contiguous blocks balancing *edges* (degree sums) instead of vertices.

    The paper observes that its uniform 1D partition leaves RCM-reordered
    graphs imbalanced and conjectures that "careful distribution of
    reordered graphs can lead to significant performance benefits" (§VII).
    This is the simplest such distribution: cut the vertex sequence where
    the running degree sum crosses multiples of ``2|E| / p``.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    n = g.num_vertices
    if n < nprocs:
        raise ValueError(f"need at least one vertex per rank ({n} < {nprocs})")
    # xadj is the prefix sum of degrees already.
    total = float(g.xadj[-1])
    targets = np.arange(1, nprocs, dtype=np.float64) * (total / nprocs)
    cuts = np.searchsorted(g.xadj[1:], targets, side="left") + 1
    # Enforce at least one vertex per rank (degenerate graphs/hubs).
    cuts = np.maximum.accumulate(np.clip(cuts, 1, n - 1))
    for i in range(len(cuts)):
        cuts[i] = max(cuts[i], i + 1)
        cuts[i] = min(cuts[i], n - (nprocs - 1 - i))
    starts = np.concatenate(([0], cuts, [n])).astype(np.int64)
    return BlockDistribution(n, nprocs, starts=starts)


def partition_graph(
    g: CSRGraph, nprocs: int, dist: BlockDistribution | None = None
) -> list[LocalGraph]:
    """Split ``g`` into per-rank :class:`LocalGraph` partitions.

    ``dist`` defaults to the vertex-balanced block distribution; pass
    :func:`edge_balanced_distribution` output for the degree-aware layout.
    """
    dist = dist or BlockDistribution(g.num_vertices, nprocs)
    parts: list[LocalGraph] = []
    for rank in range(nprocs):
        lo, hi = dist.range_of(rank)
        s, e = int(g.xadj[lo]), int(g.xadj[hi])
        xadj = (g.xadj[lo : hi + 1] - g.xadj[lo]).astype(np.int64)
        adjncy = g.adjncy[s:e]
        weights = g.weights[s:e]
        owners = dist.owner_array(adjncy)
        ghost_counts: dict[int, int] = {}
        for q, cnt in zip(*np.unique(owners[owners != rank], return_counts=True)):
            ghost_counts[int(q)] = int(cnt)
        parts.append(
            LocalGraph(
                rank=rank,
                dist=dist,
                lo=lo,
                hi=hi,
                xadj=xadj,
                adjncy=adjncy,
                weights=weights,
                ghost_counts=ghost_counts,
            )
        )
    return parts


def process_graph_adjacency(parts: list[LocalGraph]) -> list[list[int]]:
    """The undirected process graph as per-rank sorted neighbor lists."""
    return [p.neighbor_ranks for p in parts]
