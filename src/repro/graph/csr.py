"""Weighted undirected graphs in Compressed Sparse Row form.

The paper stores each rank's local portion in CSR (§IV-A); we use the same
layout globally: ``xadj`` (offsets, length n+1), ``adjncy`` (neighbor ids),
``weights`` (edge weights, mirrored on both directions of each edge).

An undirected edge {u, v} appears twice: once in u's row and once in v's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CSRGraph:
    """Immutable weighted undirected graph in CSR form."""

    xadj: np.ndarray  # int64, shape (n+1,)
    adjncy: np.ndarray  # int64, shape (2m,)
    weights: np.ndarray  # float64, shape (2m,)

    def __post_init__(self) -> None:
        if self.xadj.ndim != 1 or self.adjncy.ndim != 1 or self.weights.ndim != 1:
            raise ValueError("CSR arrays must be one-dimensional")
        if self.adjncy.shape != self.weights.shape:
            raise ValueError("adjncy and weights must have equal length")
        if self.xadj[0] != 0 or self.xadj[-1] != len(self.adjncy):
            raise ValueError("xadj must start at 0 and end at len(adjncy)")
        if np.any(np.diff(self.xadj) < 0):
            raise ValueError("xadj must be nondecreasing")

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.xadj) - 1

    @property
    def num_edges(self) -> int:
        """Undirected edge count (each edge stored twice)."""
        return len(self.adjncy) // 2

    @property
    def num_directed_edges(self) -> int:
        return len(self.adjncy)

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.xadj)

    def neighbors(self, v: int) -> np.ndarray:
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self.weights[self.xadj[v] : self.xadj[v + 1]]

    def total_weight(self) -> float:
        return float(self.weights.sum()) / 2.0

    def memory_bytes(self) -> int:
        return int(self.xadj.nbytes + self.adjncy.nbytes + self.weights.nbytes)

    # ------------------------------------------------------------------
    def edge_list(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unique undirected edges as (u, v, w) with u < v."""
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.xadj))
        mask = src < self.adjncy
        return src[mask], self.adjncy[mask], self.weights[mask]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge {u, v}; raises KeyError if absent."""
        nbrs = self.neighbors(u)
        hits = np.nonzero(nbrs == v)[0]
        if len(hits) == 0:
            raise KeyError(f"no edge {{{u}, {v}}}")
        return float(self.neighbor_weights(u)[hits[0]])

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self.neighbors(u) == v))

    # ------------------------------------------------------------------
    def permuted(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel vertices: new id of old vertex ``v`` is ``perm[v]``.

        Used by the RCM reordering study (§V-C): the graph structure is
        unchanged; only vertex numbering (and therefore the 1D block
        distribution) moves.
        """
        perm = np.asarray(perm, dtype=np.int64)
        n = self.num_vertices
        if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
            raise ValueError("perm must be a permutation of 0..n-1")
        u, v, w = self.edge_list()
        return from_edges(n, perm[u], perm[v], w)

    def subgraph_weight(self, matched_pairs: list[tuple[int, int]]) -> float:
        return sum(self.edge_weight(u, v) for u, v in matched_pairs)

    def validate(self) -> None:
        """Structural checks: symmetric, no self-loops, weights mirrored."""
        n = self.num_vertices
        if len(self.adjncy) and (self.adjncy.min() < 0 or self.adjncy.max() >= n):
            raise ValueError("neighbor id out of range")
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.xadj))
        if np.any(src == self.adjncy):
            raise ValueError("self-loop present")
        fwd = {}
        for s, d, w in zip(src, self.adjncy, self.weights):
            fwd[(int(s), int(d))] = float(w)
        for (s, d), w in fwd.items():
            if (d, s) not in fwd:
                raise ValueError(f"edge ({s},{d}) lacks reverse direction")
            if fwd[(d, s)] != w:
                raise ValueError(f"asymmetric weight on edge ({s},{d})")


def from_edges(
    num_vertices: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray | None = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from unique undirected edges.

    Inputs are parallel arrays of endpoints (any orientation, no
    duplicates, no self-loops). Weights default to 1.0.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if w is None:
        w = np.ones(len(u), dtype=np.float64)
    else:
        w = np.asarray(w, dtype=np.float64)
    if not (len(u) == len(v) == len(w)):
        raise ValueError("u, v, w must have equal length")
    if len(u) and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= num_vertices):
        raise ValueError("vertex id out of range")
    if np.any(u == v):
        raise ValueError("self-loops are not allowed")

    src = np.concatenate([u, v])
    dst = np.concatenate([v, u])
    ww = np.concatenate([w, w])
    order = np.lexsort((dst, src))
    src, dst, ww = src[order], dst[order], ww[order]
    xadj = np.zeros(num_vertices + 1, dtype=np.int64)
    np.add.at(xadj, src + 1, 1)
    np.cumsum(xadj, out=xadj)
    return CSRGraph(xadj=xadj, adjncy=dst, weights=ww)


def from_scipy(mat) -> CSRGraph:
    """Build from a symmetric scipy sparse matrix (diagonal dropped)."""
    import scipy.sparse as sp

    m = sp.coo_matrix(mat)
    mask = m.row < m.col
    return from_edges(m.shape[0], m.row[mask], m.col[mask], m.data[mask])


def to_networkx(g: CSRGraph):
    """Convert to a networkx.Graph (small instances only — for oracles)."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.num_vertices))
    u, v, w = g.edge_list()
    G.add_weighted_edges_from(zip(u.tolist(), v.tolist(), w.tolist()))
    return G
