"""Graph construction helpers shared by all generators.

Generators produce raw edge arrays (possibly with duplicates — R-MAT in
particular samples with replacement); these helpers canonicalize them and
assign edge weights. Weight assignment includes a deterministic hash-based
jitter that makes all weights distinct, which (a) implements the paper's
tie-breaking fix for pathological uniform-weight inputs and (b) makes the
half-approx locally-dominant matching *unique*, giving tests a strong
cross-implementation oracle.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, from_edges
from repro.util.hashing import edge_hash_array
from repro.util.rng import make_rng


def dedupe_edges(
    u: np.ndarray, v: np.ndarray, num_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Canonicalize raw endpoint arrays: drop self-loops and duplicates."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    mask = lo != hi
    lo, hi = lo[mask], hi[mask]
    keys = lo * np.int64(num_vertices) + hi
    _, idx = np.unique(keys, return_index=True)
    return lo[idx], hi[idx]


def hash_jitter(u: np.ndarray, v: np.ndarray, salt: int = 0) -> np.ndarray:
    """Deterministic per-edge jitter in (0, 1), identical on both endpoints."""
    h = edge_hash_array(u, v, salt=salt)
    return (h.astype(np.float64) + 1.0) / 18446744073709551616.0  # / 2^64


def assign_weights(
    u: np.ndarray,
    v: np.ndarray,
    *,
    seed: int,
    scheme: str = "uniform",
    distinct: bool = True,
    salt: int = 0,
) -> np.ndarray:
    """Assign edge weights.

    Schemes:

    * ``uniform`` — i.i.d. uniform in (0, 1];
    * ``degree``  — placeholder for callers that post-process (returns 1s);
    * ``unit``    — all ones (the pathological case from §III unless
      ``distinct`` adds the hash jitter).

    With ``distinct=True`` (default) a hash-derived jitter of magnitude
    ~1e-9 is added, making every weight unique while leaving the weight
    distribution essentially unchanged.
    """
    n = len(u)
    if scheme == "uniform":
        rng = make_rng(seed, "weights")
        w = rng.uniform(1e-3, 1.0, size=n)
    elif scheme in ("unit", "degree"):
        w = np.ones(n, dtype=np.float64)
    else:
        raise ValueError(f"unknown weight scheme {scheme!r}")
    if distinct:
        w = w + hash_jitter(u, v, salt=salt) * 1e-9
    return w


def build_graph(
    num_vertices: int,
    u: np.ndarray,
    v: np.ndarray,
    *,
    seed: int,
    weight_scheme: str = "uniform",
    distinct_weights: bool = True,
) -> CSRGraph:
    """Canonicalize raw edges, assign weights, build the CSR graph."""
    uu, vv = dedupe_edges(u, v, num_vertices)
    w = assign_weights(
        uu, vv, seed=seed, scheme=weight_scheme, distinct=distinct_weights
    )
    return from_edges(num_vertices, uu, vv, w)
