"""`repro.bfs` — Graph500-style BFS, the communication-pattern contrast
workload for Figs. 2 and 11 of the paper."""

from repro.bfs.distributed import bfs_rank_main, run_bfs
from repro.bfs.graph500 import Graph500Result, pick_search_roots, run_graph500
from repro.bfs.serial import bfs_levels, bfs_parents, validate_bfs_levels

__all__ = [
    "bfs_levels",
    "bfs_parents",
    "validate_bfs_levels",
    "bfs_rank_main",
    "run_bfs",
    "run_graph500",
    "pick_search_roots",
    "Graph500Result",
]
