"""Serial BFS used as the oracle for the distributed Graph500-style BFS."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph


def bfs_levels(g: CSRGraph, root: int) -> np.ndarray:
    """Level (hop distance) per vertex; -1 for unreachable vertices."""
    n = g.num_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")
    level = np.full(n, -1, dtype=np.int64)
    level[root] = 0
    q: deque[int] = deque([root])
    while q:
        v = q.popleft()
        lv = level[v] + 1
        for u in g.neighbors(v):
            u = int(u)
            if level[u] < 0:
                level[u] = lv
                q.append(u)
    return level


def bfs_parents(g: CSRGraph, root: int) -> np.ndarray:
    """Parent array (Graph500 output format); root's parent is itself."""
    n = g.num_vertices
    parent = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    q: deque[int] = deque([root])
    while q:
        v = q.popleft()
        for u in g.neighbors(v):
            u = int(u)
            if parent[u] < 0:
                parent[u] = v
                q.append(u)
    return parent


def validate_bfs_levels(g: CSRGraph, root: int, level: np.ndarray) -> None:
    """Graph500-style validation: every edge spans at most one level."""
    u, v, _ = g.edge_list()
    lu, lv = level[u], level[v]
    both = (lu >= 0) & (lv >= 0)
    if np.any(np.abs(lu[both] - lv[both]) > 1):
        raise AssertionError("edge spans more than one BFS level")
    reach_u = lu >= 0
    reach_v = lv >= 0
    if np.any(reach_u != reach_v):
        raise AssertionError("edge between reached and unreached vertex")
    if level[root] != 0:
        raise AssertionError("root level must be 0")
