"""Graph500-style BFS benchmark harness.

The Graph500 benchmark procedure, scaled to the simulator: generate an
R-MAT graph at a given scale, pick a set of random roots with nonzero
degree, run the distributed BFS from each, validate every search, and
report the TEPS (traversed edges per second) statistics — here in
*simulated* seconds, which is what makes BFS a calibrated communication
contrast for the matching study (Figs. 2 and 11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.distributed import run_bfs
from repro.bfs.serial import validate_bfs_levels
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph
from repro.mpisim.machine import MachineModel
from repro.util.rng import make_rng


@dataclass(frozen=True)
class Graph500Result:
    scale: int
    nprocs: int
    num_roots: int
    harmonic_mean_teps: float
    min_time: float
    max_time: float
    mean_rounds: float

    def summary(self) -> str:
        return (
            f"graph500 scale={self.scale} p={self.nprocs}: "
            f"{self.num_roots} searches, "
            f"harmonic-mean TEPS={self.harmonic_mean_teps:.3e} (simulated), "
            f"time {self.min_time:.2e}-{self.max_time:.2e}s, "
            f"avg rounds {self.mean_rounds:.1f}"
        )


def pick_search_roots(g: CSRGraph, count: int, seed: int = 0) -> list[int]:
    """Random roots with degree > 0 (Graph500 requirement), no repeats."""
    degrees = g.degrees()
    candidates = np.nonzero(degrees > 0)[0]
    if len(candidates) == 0:
        raise ValueError("graph has no non-isolated vertices")
    rng = make_rng(seed, "g500-roots")
    count = min(count, len(candidates))
    return [int(v) for v in rng.choice(candidates, size=count, replace=False)]


def run_graph500(
    scale: int,
    nprocs: int,
    num_roots: int = 4,
    *,
    seed: int = 0,
    machine: MachineModel | None = None,
    validate: bool = True,
) -> Graph500Result:
    """The kernel-2 phase of Graph500 on the simulated runtime."""
    g = rmat_graph(scale, seed=seed)
    roots = pick_search_roots(g, num_roots, seed=seed)
    times: list[float] = []
    rounds_seen: list[int] = []
    teps: list[float] = []
    for root in roots:
        level, res, rounds = run_bfs(g, nprocs, root=root, machine=machine)
        if validate:
            validate_bfs_levels(g, root, level)
        # Graph500 counts edges within the traversed component.
        reached = level >= 0
        src = np.repeat(np.arange(g.num_vertices), np.diff(g.xadj))
        traversed = int(np.count_nonzero(reached[src])) // 2
        times.append(res.makespan)
        rounds_seen.append(rounds)
        teps.append(traversed / res.makespan if res.makespan > 0 else 0.0)
    harmonic = len(teps) / sum(1.0 / t for t in teps if t > 0)
    return Graph500Result(
        scale=scale,
        nprocs=nprocs,
        num_roots=len(roots),
        harmonic_mean_teps=harmonic,
        min_time=min(times),
        max_time=max(times),
        mean_rounds=float(np.mean(rounds_seen)),
    )
