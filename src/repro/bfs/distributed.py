"""Distributed level-synchronous BFS (Graph500-style) over Send-Recv.

The paper uses Graph500 BFS only as a communication-pattern *contrast*
for matching (Figs. 2 and 11): BFS converges in a few level-synchronous
rounds with bulk frontier exchanges, whereas matching generates dynamic,
unpredictable traffic over many rounds. This module reproduces the BFS
side of that comparison with the same 1D block distribution and
nonblocking Send-Recv transport as the matching NSR backend, so the two
communication matrices are directly comparable.
"""

from __future__ import annotations

import numpy as np

from repro.graph.distribution import LocalGraph
from repro.mpisim.context import RankContext

_FRONTIER_TAG = 10


def bfs_rank_main(
    ctx: RankContext,
    parts: list[LocalGraph],
    root: int,
) -> dict:
    """SPMD level-synchronous BFS; returns the owned level slice.

    Each round: expand the local frontier, send remote candidate vertices
    to their owners (one message per (owner, vertex batch) — Graph500
    codes batch per destination), then allreduce the global frontier size
    to decide termination.
    """
    lg = parts[ctx.rank]
    ctx.alloc(lg.memory_bytes(), "graph-csr")
    n_local = lg.num_owned
    level = np.full(n_local, -1, dtype=np.int64)
    frontier: list[int] = []
    if lg.owns(root):
        level[root - lg.lo] = 0
        frontier.append(root)

    depth = 0
    rounds = 0
    while True:
        rounds += 1
        # Expand: bucket remote candidates per owning rank.
        out: dict[int, list[int]] = {}
        next_frontier: list[int] = []
        for v in frontier:
            nbrs, _ = lg.row(v)
            ctx.compute(1.5 * max(1, len(nbrs)))
            for u in nbrs:
                u = int(u)
                if lg.owns(u):
                    i = u - lg.lo
                    if level[i] < 0:
                        level[i] = depth + 1
                        next_frontier.append(u)
                else:
                    out.setdefault(lg.dist.owner(u), []).append(u)

        # Ship candidates (batched per destination, Graph500-style).
        for q, verts in sorted(out.items()):
            ctx.isend(q, verts, tag=_FRONTIER_TAG, nbytes=8 * len(verts))
        # Everyone agrees on how many batches are in flight this round.
        inbound = ctx.alltoall(
            [len(out.get(q, ())) and 1 for q in range(ctx.nprocs)], nbytes_per_pair=8
        )
        for q, has_batch in enumerate(inbound):
            if has_batch:
                msg = ctx.recv(source=q, tag=_FRONTIER_TAG)
                ctx.compute(1.0 * len(msg.payload))
                for u in msg.payload:
                    i = u - lg.lo
                    if level[i] < 0:
                        level[i] = depth + 1
                        next_frontier.append(u)

        depth += 1
        total = ctx.allreduce(len(next_frontier))
        if total == 0:
            break
        frontier = next_frontier

    ctx.free(lg.memory_bytes(), "graph-csr")
    return {"lo": lg.lo, "hi": lg.hi, "level": level, "rounds": rounds}


def run_bfs(g, nprocs: int, root: int = 0, machine=None):
    """Partition, run the SPMD BFS, and assemble the global level array."""
    from repro.graph.distribution import partition_graph
    from repro.mpisim.engine import Engine
    from repro.mpisim.machine import cori_aries

    machine = machine or cori_aries()
    parts = partition_graph(g, nprocs)
    engine = Engine(nprocs, machine)
    result = engine.run(bfs_rank_main, args=(parts, root))
    level = np.full(g.num_vertices, -1, dtype=np.int64)
    for rr in result.rank_results:
        level[rr["lo"] : rr["hi"]] = rr["level"]
    rounds = max(rr["rounds"] for rr in result.rank_results)
    return level, result, rounds
